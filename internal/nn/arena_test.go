package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// arenaTestNets builds a few representative stacks: the paper MLP, a stack
// with every fusable activation, and a CNN (non-fusable fallback).
func arenaTestNets() map[string]*Network {
	rng := rand.New(rand.NewSource(21))
	mixed := NewNetwork(
		NewDense(12, 16, rng), NewReLU(),
		NewDropout(0.3, rng),
		NewDense(16, 8, rng), NewSigmoid(),
		NewDense(8, 6, rng), NewTanh(),
		NewDense(6, 1, rng),
	)
	return map[string]*Network{
		"mlp":   NewMLP(12, []int{32, 16}, 1, rng),
		"mixed": mixed,
		"cnn":   NewCNN(12, 1, rng),
	}
}

// TestArenaBitIdentical: every arena path must reproduce the allocating
// inference path bit for bit, for any batch size, including batch-size
// changes that reshape the scratch (grow and shrink).
func TestArenaBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for name, net := range arenaTestNets() {
		in := net.InputDim()
		a := NewArena(net)
		for _, rows := range []int{1, 3, 17, 64, 2, 64, 1} {
			x := tensor.NewMatrix(rows, in).RandomizeNormal(rng, 1)
			want := net.PredictProbs(x)
			got := a.PredictProbsInto(make([]float64, rows), x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s rows=%d: arena diverges at row %d: %v != %v",
						name, rows, i, got[i], want[i])
				}
			}
			// Fused single-row path against each batch row.
			for i := 0; i < rows; i++ {
				if p := a.PredictProb1(x.Row(i)); p != want[i] {
					t.Fatalf("%s rows=%d: PredictProb1 diverges at row %d: %v != %v",
						name, rows, i, p, want[i])
				}
			}
		}
	}
}

// TestArenaZeroAlloc is the steady-state guarantee: once scratch has grown,
// arena passes allocate nothing.
func TestArenaZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewMLP(66, []int{128, 256, 128}, 1, rng)
	a := NewArena(net)
	x := tensor.NewMatrix(64, 66).RandomizeNormal(rng, 1)
	dst := make([]float64, 64)
	a.PredictProbsInto(dst, x) // grow scratch
	if n := testing.AllocsPerRun(10, func() { a.PredictProbsInto(dst, x) }); n != 0 {
		t.Fatalf("arena batch pass allocates %v per run, want 0", n)
	}
	row := x.Row(0)
	a.PredictProb1(row)
	if n := testing.AllocsPerRun(10, func() { a.PredictProb1(row) }); n != 0 {
		t.Fatalf("fused single-sample pass allocates %v per run, want 0", n)
	}
	// Shrinking the batch must not allocate either (in-place reslice).
	small := tensor.FromSlice(3, 66, x.Data[:3*66])
	dst3 := dst[:3]
	a.PredictProbsInto(dst3, small)
	if n := testing.AllocsPerRun(10, func() { a.PredictProbsInto(dst3, small) }); n != 0 {
		t.Fatalf("arena shrunk-batch pass allocates %v per run, want 0", n)
	}
}

// TestArenaSharedNetworkConcurrent: many arenas over one network, used from
// many goroutines, must agree with the serial path (run with -race).
func TestArenaSharedNetworkConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	net := NewMLP(10, []int{16, 8}, 1, rng)
	x := tensor.NewMatrix(32, 10).RandomizeNormal(rng, 1)
	want := net.PredictProbs(x)
	const workers = 8
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		go func() {
			a := NewArena(net)
			dst := make([]float64, x.Rows)
			for iter := 0; iter < 50; iter++ {
				a.PredictProbsInto(dst, x)
				for i := range want {
					if dst[i] != want[i] {
						errs <- "arena diverged under concurrency"
						return
					}
				}
			}
			errs <- ""
		}()
	}
	for w := 0; w < workers; w++ {
		if e := <-errs; e != "" {
			t.Fatal(e)
		}
	}
}

// TestPredictProbsInto covers the new Into variants on Network itself.
func TestPredictProbsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := NewMLP(8, []int{8}, 1, rng)
	x := tensor.NewMatrix(5, 8).RandomizeNormal(rng, 1)
	want := net.PredictProbs(x)
	got := net.PredictProbsInto(make([]float64, 5), x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PredictProbsInto diverges at %d", i)
		}
	}
	wantB := net.PredictBinary(x)
	gotB := net.PredictBinaryInto(make([]int, 5), make([]float64, 5), x)
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("PredictBinaryInto diverges at %d", i)
		}
	}
	for _, fn := range []func(){
		func() { net.PredictProbsInto(make([]float64, 4), x) },
		func() { net.PredictBinaryInto(make([]int, 4), make([]float64, 5), x) },
		func() { NewArena(net).PredictProbsInto(make([]float64, 4), x) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on dst length mismatch")
				}
			}()
			fn()
		}()
	}
}
