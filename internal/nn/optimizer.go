package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates network parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update. params and grads are parallel slices
	// collected across all layers.
	Step(params, grads []*tensor.Matrix)
	// Name identifies the optimiser for logging.
	Name() string
}

// SGD is plain stochastic gradient descent with optional L2 weight decay
// (coupled, i.e. added to the gradient).
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Matrix) {
	for i, p := range params {
		g := grads[i]
		for j := range p.Data {
			p.Data[j] -= s.LR * (g.Data[j] + s.WeightDecay*p.Data[j])
		}
	}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR       float64
	Beta     float64 // momentum coefficient, e.g. 0.9
	velocity [][]float64
}

// Step implements Optimizer.
func (m *Momentum) Step(params, grads []*tensor.Matrix) {
	if m.velocity == nil {
		m.velocity = make([][]float64, len(params))
		for i, p := range params {
			m.velocity[i] = make([]float64, len(p.Data))
		}
	}
	for i, p := range params {
		g := grads[i]
		v := m.velocity[i]
		for j := range p.Data {
			v[j] = m.Beta*v[j] + g.Data[j]
			p.Data[j] -= m.LR * v[j]
		}
	}
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// AdamW implements Adam with decoupled weight decay (Loshchilov & Hutter,
// the paper's reference [23]): the decay is applied directly to the weights
// rather than folded into the adaptive gradient statistics.
type AdamW struct {
	LR          float64
	Beta1       float64 // default 0.9
	Beta2       float64 // default 0.999
	Eps         float64 // default 1e-8
	WeightDecay float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdamW returns an AdamW optimiser with the standard β/ε defaults.
func NewAdamW(lr, weightDecay float64) *AdamW {
	return &AdamW{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (a *AdamW) Step(params, grads []*tensor.Matrix) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Data))
			a.v[i] = make([]float64, len(p.Data))
		}
	}
	a.t++
	b1, b2 := a.Beta1, a.Beta2
	// Bias-correction folded into the step size.
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	step := a.LR * math.Sqrt(c2) / c1
	for i, p := range params {
		g := grads[i]
		mi, vi := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			mi[j] = b1*mi[j] + (1-b1)*gj
			vi[j] = b2*vi[j] + (1-b2)*gj*gj
			// Decoupled decay: shrink the weight, then apply Adam.
			p.Data[j] -= a.LR * a.WeightDecay * p.Data[j]
			p.Data[j] -= step * mi[j] / (math.Sqrt(vi[j]) + a.Eps)
		}
	}
}

// Name implements Optimizer.
func (a *AdamW) Name() string { return "adamw" }

// Reset clears the optimiser state (moment estimates and step counter) so an
// optimiser value can be reused across independent training runs.
func (a *AdamW) Reset() {
	a.t = 0
	a.m = nil
	a.v = nil
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, a standard guard against the exploding-gradient problem
// the paper mentions. Returns the pre-clip norm.
func ClipGradNorm(grads []*tensor.Matrix, maxNorm float64) float64 {
	var total float64
	for _, g := range grads {
		for _, v := range g.Data {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, g := range grads {
			g.Scale(scale)
		}
	}
	return norm
}
