package nn

import (
	"math"

	"repro/internal/tensor"
)

// Activation scratch-buffer note: in training mode every activation writes
// its output (and backward gradient) into per-layer scratch matrices that
// are reused across batches, so a full forward/backward step allocates
// nothing once shapes settle. Every element is overwritten on each pass —
// stale scratch contents can never leak into a result. Inference
// (train=false) allocates fresh outputs and is safe for concurrent use; see
// the Layer contract.

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	input  *tensor.Matrix
	fwdOut *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	var out *tensor.Matrix
	if train {
		r.input = x
		r.fwdOut = tensor.EnsureShape(r.fwdOut, x.Rows, x.Cols)
		out = r.fwdOut
	} else {
		// No writes to r here: inference must stay concurrent-safe.
		out = tensor.NewMatrix(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer: passes gradient where the input was positive.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if r.input == nil {
		panic("nn: ReLU.Backward without a training Forward")
	}
	r.bwdDx = tensor.EnsureShape(r.bwdDx, grad.Rows, grad.Cols)
	out := r.bwdDx
	for i, v := range r.input.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Sigmoid is the logistic activation 1/(1+e^{-x}).
type Sigmoid struct {
	output *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar evaluates the logistic function at x.
func SigmoidScalar(x float64) float64 {
	// Split by sign for numerical stability.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	var out *tensor.Matrix
	if train {
		s.output = tensor.EnsureShape(s.output, x.Rows, x.Cols)
		out = s.output
	} else {
		out = tensor.NewMatrix(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		out.Data[i] = SigmoidScalar(v)
	}
	return out
}

// Backward implements Layer: dσ/dx = σ(x)·(1-σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if s.output == nil {
		panic("nn: Sigmoid.Backward without a training Forward")
	}
	s.bwdDx = tensor.EnsureShape(s.bwdDx, grad.Rows, grad.Cols)
	out := s.bwdDx
	for i, o := range s.output.Data {
		out.Data[i] = grad.Data[i] * o * (1 - o)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	output *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	var out *tensor.Matrix
	if train {
		t.output = tensor.EnsureShape(t.output, x.Rows, x.Cols)
		out = t.output
	} else {
		out = tensor.NewMatrix(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// Backward implements Layer: d tanh/dx = 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if t.output == nil {
		panic("nn: Tanh.Backward without a training Forward")
	}
	t.bwdDx = tensor.EnsureShape(t.bwdDx, grad.Rows, grad.Cols)
	out := t.bwdDx
	for i, o := range t.output.Data {
		out.Data[i] = grad.Data[i] * (1 - o*o)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }
