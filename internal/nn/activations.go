package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	input *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		r.input = x
	} else {
		r.input = nil
	}
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Layer: passes gradient where the input was positive.
func (r *ReLU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if r.input == nil {
		panic("nn: ReLU.Backward without a training Forward")
	}
	out := tensor.NewMatrix(grad.Rows, grad.Cols)
	for i, v := range r.input.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Sigmoid is the logistic activation 1/(1+e^{-x}).
type Sigmoid struct {
	output *tensor.Matrix
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// SigmoidScalar evaluates the logistic function at x.
func SigmoidScalar(x float64) float64 {
	// Split by sign for numerical stability.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = SigmoidScalar(v)
	}
	if train {
		s.output = out
	} else {
		s.output = nil
	}
	return out
}

// Backward implements Layer: dσ/dx = σ(x)·(1-σ(x)).
func (s *Sigmoid) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if s.output == nil {
		panic("nn: Sigmoid.Backward without a training Forward")
	}
	out := tensor.NewMatrix(grad.Rows, grad.Cols)
	for i, o := range s.output.Data {
		out.Data[i] = grad.Data[i] * o * (1 - o)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	output *tensor.Matrix
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	if train {
		t.output = out
	} else {
		t.output = nil
	}
	return out
}

// Backward implements Layer: d tanh/dx = 1 - tanh².
func (t *Tanh) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if t.output == nil {
		panic("nn: Tanh.Backward without a training Forward")
	}
	out := tensor.NewMatrix(grad.Rows, grad.Cols)
	for i, o := range t.output.Data {
		out.Data[i] = grad.Data[i] * (1 - o*o)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }
