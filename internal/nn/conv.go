package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over the subcarrier axis: the CSI amplitude
// vector is a spectrum, and local spectral patterns (fades spanning a few
// adjacent subcarriers) are exactly what a small kernel captures. Used by
// the CNN model-family extension as an alternative to the paper's MLP.
//
// Layout: a batch row holds InC channels of length L, channel-major
// (index = channel*L + position). Valid padding, stride 1:
// Lout = L − K + 1, output rows hold OutC channels of length Lout.
type Conv1D struct {
	InC, OutC, K, L int
	W               *tensor.Matrix // OutC × (InC·K)
	B               *tensor.Matrix // 1 × OutC
	GradW           *tensor.Matrix
	GradB           *tensor.Matrix

	input  *tensor.Matrix
	fwdOut *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewConv1D creates a Conv1D layer with Kaiming-uniform kernels.
func NewConv1D(inC, outC, k, l int, rng *rand.Rand) *Conv1D {
	if k < 1 || k > l {
		panic(fmt.Sprintf("nn: Conv1D kernel %d out of [1,%d]", k, l))
	}
	c := &Conv1D{
		InC: inC, OutC: outC, K: k, L: l,
		W:     tensor.NewMatrix(outC, inC*k).KaimingInit(rng, inC*k),
		B:     tensor.NewMatrix(1, outC),
		GradW: tensor.NewMatrix(outC, inC*k),
		GradB: tensor.NewMatrix(1, outC),
	}
	return c
}

// LOut returns the output length per channel.
func (c *Conv1D) LOut() int { return c.L - c.K + 1 }

// OutDim returns the flattened output width OutC·LOut.
func (c *Conv1D) OutDim() int { return c.OutC * c.LOut() }

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.InC*c.L {
		panic(fmt.Sprintf("nn: Conv1D(%d×%d) got input width %d, want %d", c.InC, c.L, x.Cols, c.InC*c.L))
	}
	lout := c.LOut()
	var out *tensor.Matrix
	if train {
		c.input = x
		c.fwdOut = tensor.EnsureShape(c.fwdOut, x.Rows, c.OutC*lout)
		out = c.fwdOut
	} else {
		// No writes to c here: inference must stay concurrent-safe.
		out = tensor.NewMatrix(x.Rows, c.OutC*lout)
	}
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.Row(oc)
			bias := c.B.Data[oc]
			base := oc * lout
			for p := 0; p < lout; p++ {
				s := bias
				for ic := 0; ic < c.InC; ic++ {
					inOff := ic*c.L + p
					wOff := ic * c.K
					for j := 0; j < c.K; j++ {
						s += w[wOff+j] * in[inOff+j]
					}
				}
				dst[base+p] = s
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if c.input == nil {
		panic("nn: Conv1D.Backward without a training Forward")
	}
	lout := c.LOut()
	c.GradW.Zero()
	c.GradB.Zero()
	c.bwdDx = tensor.EnsureShape(c.bwdDx, c.input.Rows, c.input.Cols)
	dx := c.bwdDx
	dx.Zero() // accumulated into below; scratch may hold the previous step

	for b := 0; b < c.input.Rows; b++ {
		in := c.input.Row(b)
		g := grad.Row(b)
		dIn := dx.Row(b)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.Row(oc)
			gw := c.GradW.Row(oc)
			base := oc * lout
			var gb float64
			for p := 0; p < lout; p++ {
				gv := g[base+p]
				if gv == 0 {
					continue
				}
				gb += gv
				for ic := 0; ic < c.InC; ic++ {
					inOff := ic*c.L + p
					wOff := ic * c.K
					for j := 0; j < c.K; j++ {
						gw[wOff+j] += gv * in[inOff+j]
						dIn[inOff+j] += gv * w[wOff+j]
					}
				}
			}
			c.GradB.Data[oc] += gb
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.Matrix { return []*tensor.Matrix{c.W, c.B} }

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.Matrix { return []*tensor.Matrix{c.GradW, c.GradB} }

// Name implements Layer.
func (c *Conv1D) Name() string { return "conv1d" }

// NumParams returns the trainable scalar count.
func (c *Conv1D) NumParams() int { return c.OutC*c.InC*c.K + c.OutC }

// MaxPool1D downsamples each channel by taking the maximum over
// non-overlapping windows of size W (stride = W, trailing remainder
// dropped). It assumes the Conv1D channel-major layout.
type MaxPool1D struct {
	C, L, W int

	argmax []int // per output element: winning input index
	inCols int
	fwdOut *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewMaxPool1D creates a pool layer for C channels of length L.
func NewMaxPool1D(c, l, w int) *MaxPool1D {
	if w < 1 || w > l {
		panic(fmt.Sprintf("nn: MaxPool1D window %d out of [1,%d]", w, l))
	}
	return &MaxPool1D{C: c, L: l, W: w}
}

// LOut returns the pooled per-channel length.
func (m *MaxPool1D) LOut() int { return m.L / m.W }

// OutDim returns the flattened output width.
func (m *MaxPool1D) OutDim() int { return m.C * m.LOut() }

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != m.C*m.L {
		panic(fmt.Sprintf("nn: MaxPool1D got width %d, want %d", x.Cols, m.C*m.L))
	}
	lout := m.LOut()
	var out *tensor.Matrix
	if train {
		m.fwdOut = tensor.EnsureShape(m.fwdOut, x.Rows, m.C*lout)
		out = m.fwdOut
		if need := x.Rows * m.C * lout; cap(m.argmax) >= need {
			m.argmax = m.argmax[:need]
		} else {
			m.argmax = make([]int, need)
		}
		m.inCols = x.Cols
	} else {
		// No writes to m here: inference must stay concurrent-safe.
		out = tensor.NewMatrix(x.Rows, m.C*lout)
	}
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for ch := 0; ch < m.C; ch++ {
			for p := 0; p < lout; p++ {
				start := ch*m.L + p*m.W
				best := start
				for j := 1; j < m.W; j++ {
					if in[start+j] > in[best] {
						best = start + j
					}
				}
				oi := ch*lout + p
				dst[oi] = in[best]
				if train {
					m.argmax[b*m.C*lout+oi] = best
				}
			}
		}
	}
	return out
}

// Backward implements Layer: routes gradient to the argmax positions.
func (m *MaxPool1D) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if m.argmax == nil {
		panic("nn: MaxPool1D.Backward without a training Forward")
	}
	m.bwdDx = tensor.EnsureShape(m.bwdDx, grad.Rows, m.inCols)
	dx := m.bwdDx
	dx.Zero() // gradient is scattered into argmax positions below
	per := grad.Cols
	for b := 0; b < grad.Rows; b++ {
		g := grad.Row(b)
		dIn := dx.Row(b)
		for i, gv := range g {
			dIn[m.argmax[b*per+i]] += gv
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool1D) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (m *MaxPool1D) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (m *MaxPool1D) Name() string { return "maxpool1d" }

// NewCNN builds the CSI CNN used by the model-family extension:
//
//	conv(k=5, 8ch) → ReLU → pool(2) → conv(k=3, 16ch) → ReLU → pool(2)
//	→ dense(→64) → ReLU → dense(→out)
//
// for a length-l single-channel input (l=64 subcarrier amplitudes).
func NewCNN(l, out int, rng *rand.Rand) *Network {
	c1 := NewConv1D(1, 8, 5, l, rng)
	p1 := NewMaxPool1D(8, c1.LOut(), 2)
	c2 := NewConv1D(8, 16, 3, p1.LOut(), rng)
	p2 := NewMaxPool1D(16, c2.LOut(), 2)
	return NewNetwork(
		c1, NewReLU(), p1,
		c2, NewReLU(), p2,
		NewDense(p2.OutDim(), 64, rng), NewReLU(),
		NewDense(64, out, rng),
	)
}
