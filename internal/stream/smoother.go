package stream

// Smoother debounces per-sample decisions with hysteresis: the announced
// state flips only after `need` consecutive contrary samples, so 20 Hz
// per-sample flicker is not reported as a door event. It was lifted out of
// examples/realtime so every stream consumer shares one implementation.
type Smoother struct {
	state, run, need int
}

// NewSmoother returns a Smoother starting in `initial` that requires `need`
// consecutive contrary samples to flip (need < 1 is treated as 1, i.e. no
// hysteresis).
func NewSmoother(initial, need int) *Smoother {
	if need < 1 {
		need = 1
	}
	return &Smoother{state: initial, need: need}
}

// Push feeds one per-sample decision and returns the (possibly updated)
// announced state plus whether it flipped on this sample.
func (s *Smoother) Push(pred int) (state int, flipped bool) {
	if pred == s.state {
		s.run = 0
		return s.state, false
	}
	s.run++
	if s.run >= s.need {
		s.state = pred
		s.run = 0
		return s.state, true
	}
	return s.state, false
}

// State returns the current announced state.
func (s *Smoother) State() int { return s.state }
