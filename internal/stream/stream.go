// Package stream is the hardened runtime between a (possibly faulty) CSI
// capture and an occupancy detector. It owns everything deployment needs
// that a clean-room evaluation does not:
//
//   - imputation — short gaps from dropped frames are bridged by holding
//     the last CSI vector; missing env readings are held or linearly
//     extrapolated, policy-selectable;
//   - graceful degradation — a watchdog counts consecutive missing env
//     readings and swaps the CSI+Env primary detector for a CSI-only
//     fallback when the env feed dies, swapping back after the feed has
//     been healthy again for a recovery window;
//   - hysteresis smoothing — per-sample flicker is debounced before a
//     state transition is announced (Smoother, shared with the examples);
//   - bounded-queue consumption — the asynchronous Run loop reads from a
//     bounded channel with a per-read timeout, exponential backoff with
//     seeded jitter, and a dead-feed watchdog, so a stalled producer can
//     neither wedge the consumer nor grow memory without bound.
//
// The synchronous Process path is purely deterministic: its output is a
// function of the frame sequence alone, never of time or scheduling, which
// is what lets internal/core's robustness sweep promise bit-identical
// results for any worker count.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Predictor is the slice of a detector the runtime needs. *core.Detector
// implements it; the indirection keeps this package free of a dependency
// cycle with internal/core.
type Predictor interface {
	PredictRecord(r *dataset.Record) (float64, int)
}

// Mode identifies which detector served a frame.
type Mode int

// Runtime modes.
const (
	ModePrimary Mode = iota
	ModeFallback
	ModeHeld // no inference ran; the previous decision was held
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePrimary:
		return "primary"
	case ModeFallback:
		return "fallback"
	case ModeHeld:
		return "held"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ImputePolicy selects how missing env readings are bridged.
type ImputePolicy int

// Imputation policies for env gaps.
const (
	// ImputeHold repeats the last delivered reading.
	ImputeHold ImputePolicy = iota
	// ImputeLinear extrapolates linearly from the last two readings.
	ImputeLinear
)

// Config parametrises the runtime. A zero Fallback disables degradation
// (the primary is used throughout, with imputed env when missing).
type Config struct {
	// Primary is the preferred detector (typically CSI+Env).
	Primary Predictor
	// Fallback, when non-nil, takes over while the env feed is dead
	// (typically the CSI-only detector).
	Fallback Predictor
	// PrimaryUsesEnv declares whether Primary consumes Temp/Humidity. When
	// false, env faults never trigger imputation or fallback.
	PrimaryUsesEnv bool

	// MaxHoldGap is the longest run of dropped frames bridged by holding
	// the last CSI vector; longer gaps hold the previous *decision*
	// instead of fabricating data. Default 8.
	MaxHoldGap int
	// Imputation selects the env gap-bridging policy. Default ImputeHold.
	Imputation ImputePolicy
	// WatchdogFrames is how many consecutive frames without a fresh env
	// reading the watchdog tolerates before degrading to Fallback.
	// Default 40 (2 s at the paper's 20 Hz).
	WatchdogFrames int
	// RecoverFrames is how many consecutive healthy env frames are needed
	// before returning to Primary. Default 100 (5 s at 20 Hz).
	RecoverFrames int
	// SmootherNeed enables hysteresis smoothing of the announced state
	// when > 0: a flip requires that many consecutive contrary samples.
	SmootherNeed int

	// ReadTimeout bounds one queue read in Run. Default 250 ms.
	ReadTimeout time.Duration
	// BackoffInitial/BackoffMax bound the exponential backoff between
	// timed-out reads. Defaults 50 ms / 2 s.
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	// DeadFeedTimeouts is how many consecutive timed-out reads Run
	// tolerates before declaring the feed dead. Default 8.
	DeadFeedTimeouts int
	// Seed drives the backoff jitter.
	Seed int64

	// Observer receives the runtime's metrics (frame/imputation/transition
	// counters, the current mode, decision latency). Nil disables
	// observability at zero cost; attaching one never changes a decision —
	// instruments only count (DESIGN.md §10). Several runtimes may share
	// one Observer: the series aggregate.
	Observer obs.Observer
}

// Validate reports whether the configuration can run. Zero fields select
// defaults (withDefaults), so only contradictions fail: a missing primary
// detector, negative counts or timeouts, or an unknown imputation policy.
// New calls it; callers may too, as a pre-flight check.
func (c Config) Validate() error {
	if c.Primary == nil {
		return errors.New("stream: Config.Primary is required")
	}
	if c.MaxHoldGap < 0 || c.WatchdogFrames < 0 || c.RecoverFrames < 0 ||
		c.SmootherNeed < 0 || c.DeadFeedTimeouts < 0 {
		return fmt.Errorf("stream: negative frame counts (hold %d, watchdog %d, recover %d, smoother %d, dead-feed %d)",
			c.MaxHoldGap, c.WatchdogFrames, c.RecoverFrames, c.SmootherNeed, c.DeadFeedTimeouts)
	}
	if c.ReadTimeout < 0 || c.BackoffInitial < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("stream: negative timeouts (read %v, backoff %v..%v)",
			c.ReadTimeout, c.BackoffInitial, c.BackoffMax)
	}
	if c.Imputation != ImputeHold && c.Imputation != ImputeLinear {
		return fmt.Errorf("stream: unknown imputation policy %d", int(c.Imputation))
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxHoldGap == 0 {
		c.MaxHoldGap = 8
	}
	if c.WatchdogFrames == 0 {
		c.WatchdogFrames = 40
	}
	if c.RecoverFrames == 0 {
		c.RecoverFrames = 100
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 250 * time.Millisecond
	}
	if c.BackoffInitial == 0 {
		c.BackoffInitial = 50 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.DeadFeedTimeouts == 0 {
		c.DeadFeedTimeouts = 8
	}
	return c
}

// Decision is the runtime's output for one frame.
type Decision struct {
	// P is the model probability of occupancy (NaN-free; held frames
	// repeat the previous probability).
	P float64
	// Pred is the per-sample model decision (0/1).
	Pred int
	// State is the announced (smoothed) occupancy state.
	State int
	// Flipped reports a smoothed state transition on this frame.
	Flipped bool
	// Mode identifies which detector served the frame.
	Mode Mode
	// CSIImputed / EnvImputed mark bridged inputs.
	CSIImputed bool
	EnvImputed bool
}

// metrics are the runtime's obs instruments. All fields stay nil when no
// Observer is configured; every method on a nil instrument no-ops, so the
// uninstrumented hot path pays one nil check per touch.
type metrics struct {
	frames       *obs.Counter
	primary      *obs.Counter
	fallback     *obs.Counter
	held         *obs.Counter
	csiImputed   *obs.Counter
	envImputed   *obs.Counter
	degradations *obs.Counter
	recoveries   *obs.Counter
	flips        *obs.Counter
	readTimeouts *obs.Counter
	deadFeeds    *obs.Counter
	mode         *obs.Gauge
	maxBackoff   *obs.Gauge
	latency      *obs.Histogram
}

// newMetrics resolves the stream instrument set against o (nil → all-nil).
func newMetrics(o obs.Observer) metrics {
	if o == nil {
		return metrics{}
	}
	return metrics{
		frames:       o.Counter("stream_frames_total", "frames processed by the runtime"),
		primary:      o.Counter("stream_primary_frames_total", "frames served by the primary detector"),
		fallback:     o.Counter("stream_fallback_frames_total", "frames served by the fallback detector"),
		held:         o.Counter("stream_held_frames_total", "frames where the previous decision was held"),
		csiImputed:   o.Counter("stream_csi_imputed_total", "dropped frames bridged by holding the last CSI vector"),
		envImputed:   o.Counter("stream_env_imputed_total", "missing env readings bridged by imputation"),
		degradations: o.Counter("stream_degradations_total", "primary-to-fallback transitions"),
		recoveries:   o.Counter("stream_recoveries_total", "fallback-to-primary transitions"),
		flips:        o.Counter("stream_flips_total", "smoothed occupancy state transitions"),
		readTimeouts: o.Counter("stream_read_timeouts_total", "queue reads that timed out in Run"),
		deadFeeds:    o.Counter("stream_dead_feeds_total", "dead-feed watchdog firings"),
		mode:         o.Gauge("stream_mode", "current degradation mode (0=primary 1=fallback 2=held)"),
		maxBackoff:   o.Gauge("stream_max_backoff_seconds", "largest backoff sleep taken by Run so far"),
		latency:      o.Histogram("stream_decision_latency_seconds", "per-frame decision latency in Run", obs.ExpBuckets(1e-6, 4, 10)),
	}
}

// Runtime hardens a detector against the fault channel. Not safe for
// concurrent use; give each stream its own Runtime.
type Runtime struct {
	cfg Config
	sm  *Smoother
	rng *rand.Rand
	m   metrics

	mode       Mode
	envMissRun int
	envOKRun   int
	dropRun    int

	lastCSI  [csi.NumSubcarriers]float64
	haveCSI  bool
	lastDec  Decision
	haveDec  bool
	envHist  [2]envSample // [0] newest, [1] previous
	envCount int

	frames        int // frames processed so far; also the next frame index
	firstFallback int // index of the first fallback-served frame, -1 until one
}

type envSample struct {
	index     int
	temp, hum float64
}

// New builds a Runtime; zero config fields take defaults. Primary must be
// set.
func New(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		mode:          ModePrimary,
		m:             newMetrics(cfg.Observer),
		firstFallback: -1,
	}
	if cfg.SmootherNeed > 0 {
		rt.sm = NewSmoother(0, cfg.SmootherNeed)
	}
	return rt, nil
}

// Mode returns the current degradation state.
func (rt *Runtime) Mode() Mode { return rt.mode }

// FirstFallbackFrame returns the index of the first frame served by the
// fallback detector, or -1 if the runtime has never fallen back. Aggregate
// counts (frames, imputations, transitions) live in the stream_* series of
// the configured Observer.
func (rt *Runtime) FirstFallbackFrame() int { return rt.firstFallback }

// Process runs one frame through imputation, the degradation state machine
// and the detector, returning the decision. Purely deterministic in the
// frame sequence.
func (rt *Runtime) Process(f fault.Frame) Decision {
	cfg := &rt.cfg
	idx := rt.frames
	rt.frames++
	rt.m.frames.Inc()

	// --- env feed tracking ------------------------------------------------
	if f.EnvOK {
		rt.envOKRun++
		rt.envMissRun = 0
		rt.envHist[1] = rt.envHist[0]
		rt.envHist[0] = envSample{index: idx, temp: f.Rec.Temp, hum: f.Rec.Humidity}
		if rt.envCount < 2 {
			rt.envCount++
		}
	} else {
		rt.envMissRun++
		rt.envOKRun = 0
	}

	// --- degradation state machine ---------------------------------------
	if cfg.PrimaryUsesEnv && cfg.Fallback != nil {
		switch rt.mode {
		case ModePrimary:
			if rt.envMissRun >= cfg.WatchdogFrames {
				rt.mode = ModeFallback
				rt.m.degradations.Inc()
				rt.m.mode.Set(float64(ModeFallback))
			}
		case ModeFallback:
			if rt.envOKRun >= cfg.RecoverFrames {
				rt.mode = ModePrimary
				rt.m.recoveries.Inc()
				rt.m.mode.Set(float64(ModePrimary))
			}
		}
	}

	// --- CSI gap bridging -------------------------------------------------
	rec := f.Rec
	d := Decision{Mode: rt.mode}
	if f.Dropped {
		rt.dropRun++
		if !rt.haveCSI || rt.dropRun > cfg.MaxHoldGap {
			return rt.hold(d)
		}
		rec.CSI = rt.lastCSI
		d.CSIImputed = true
		rt.m.csiImputed.Inc()
	} else {
		rt.dropRun = 0
		rt.lastCSI = f.Rec.CSI
		rt.haveCSI = true
	}

	// --- env imputation & detector selection ------------------------------
	pred := cfg.Primary
	if rt.mode == ModeFallback {
		pred = cfg.Fallback
	} else if cfg.PrimaryUsesEnv && !f.EnvOK {
		if rt.envCount == 0 {
			// No env reading ever arrived: the primary cannot run yet.
			if cfg.Fallback != nil {
				pred = cfg.Fallback
				d.Mode = ModeFallback
			} else {
				return rt.hold(d)
			}
		} else {
			rec.Temp, rec.Humidity = rt.imputeEnv(idx)
			d.EnvImputed = true
			rt.m.envImputed.Inc()
		}
	}

	// --- inference --------------------------------------------------------
	d.P, d.Pred = pred.PredictRecord(&rec)
	d.State = d.Pred
	if rt.sm != nil {
		d.State, d.Flipped = rt.sm.Push(d.Pred)
		if d.Flipped {
			rt.m.flips.Inc()
		}
	}
	switch d.Mode {
	case ModeFallback:
		rt.m.fallback.Inc()
		if rt.firstFallback < 0 {
			rt.firstFallback = idx
		}
	default:
		rt.m.primary.Inc()
	}
	rt.lastDec = d
	rt.haveDec = true
	return d
}

// hold repeats the previous decision when no inference can run.
func (rt *Runtime) hold(d Decision) Decision {
	d.Mode = ModeHeld
	rt.m.held.Inc()
	if rt.haveDec {
		d.P, d.Pred, d.State = rt.lastDec.P, rt.lastDec.Pred, rt.lastDec.State
	}
	return d
}

// imputeEnv bridges a missing env reading at frame idx.
func (rt *Runtime) imputeEnv(idx int) (temp, hum float64) {
	last := rt.envHist[0]
	if rt.cfg.Imputation == ImputeHold || rt.envCount < 2 {
		return last.temp, last.hum
	}
	prev := rt.envHist[1]
	span := float64(last.index - prev.index)
	if span <= 0 {
		return last.temp, last.hum
	}
	ahead := float64(idx - last.index)
	return last.temp + (last.temp-prev.temp)/span*ahead,
		last.hum + (last.hum-prev.hum)/span*ahead
}

// ErrDeadFeed is returned by Run when the source stops delivering frames
// for DeadFeedTimeouts consecutive read timeouts.
var ErrDeadFeed = errors.New("stream: feed dead (no frames within the watchdog window)")

// Run consumes frames from a bounded channel until it closes, the context
// is cancelled, or the dead-feed watchdog fires. Each read is bounded by
// ReadTimeout; timed-out reads back off exponentially with seeded jitter.
// A frame arriving mid-backoff is delivered immediately — the backoff only
// paces the watchdog, it never delays a live producer. fn receives every
// frame with its decision; a non-nil error from fn stops the loop and is
// returned.
//
// The producer writing to frames gets backpressure for free: sends block
// once the channel's buffer — the bounded queue — is full.
func (rt *Runtime) Run(ctx context.Context, frames <-chan fault.Frame, fn func(fault.Frame, Decision) error) error {
	cfg := &rt.cfg
	backoff := cfg.BackoffInitial
	timeouts := 0
	timer := time.NewTimer(cfg.ReadTimeout)
	defer timer.Stop()
	// deliver runs one received frame through Process and the caller's fn.
	deliver := func(f fault.Frame) error {
		timeouts = 0
		backoff = cfg.BackoffInitial
		// The clock is only read when a latency histogram is attached,
		// so the uninstrumented loop stays free of time syscalls. Timing
		// wraps Process alone: fn is the caller's code.
		var t0 time.Time
		if rt.m.latency != nil {
			t0 = time.Now()
		}
		d := rt.Process(f)
		if rt.m.latency != nil {
			rt.m.latency.Observe(time.Since(t0).Seconds())
		}
		return fn(f, d)
	}
	for {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(cfg.ReadTimeout)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case f, ok := <-frames:
			if !ok {
				return nil
			}
			if err := deliver(f); err != nil {
				return err
			}
		case <-timer.C:
			rt.m.readTimeouts.Inc()
			timeouts++
			if timeouts >= cfg.DeadFeedTimeouts {
				rt.m.deadFeeds.Inc()
				return ErrDeadFeed
			}
			// Exponential backoff with ±25% seeded jitter. The sleep still
			// listens on the frame channel so a producer that comes back
			// mid-backoff is served at once.
			jitter := 1 + (rt.rng.Float64()-0.5)/2
			sleep := time.Duration(float64(backoff) * jitter)
			rt.m.maxBackoff.SetMax(sleep.Seconds())
			select {
			case <-ctx.Done():
				return ctx.Err()
			case f, ok := <-frames:
				if !ok {
					return nil
				}
				if err := deliver(f); err != nil {
					return err
				}
				continue // deliver reset the backoff; don't double it
			case <-time.After(sleep):
			}
			backoff *= 2
			if backoff > cfg.BackoffMax {
				backoff = cfg.BackoffMax
			}
		}
	}
}
