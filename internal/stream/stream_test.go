package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
)

// fakePred records every record it is asked to classify and returns a
// canned answer.
type fakePred struct {
	p     float64
	pred  int
	calls []dataset.Record
}

func (f *fakePred) PredictRecord(r *dataset.Record) (float64, int) {
	f.calls = append(f.calls, *r)
	return f.p, f.pred
}

// count reads one counter back from a test registry.
func count(reg *obs.Registry, name string) int {
	return int(reg.Counter(name, "").Value())
}

// frame builds a clean frame with recognisable CSI and env values.
func frame(i int, temp float64) fault.Frame {
	var f fault.Frame
	f.Index = i
	f.EnvOK = true
	f.Rec.Time = time.Date(2022, 1, 5, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	f.Rec.Temp = temp
	f.Rec.Humidity = temp * 2
	for k := range f.Rec.CSI {
		f.Rec.CSI[k] = float64(i*100 + k)
	}
	f.Truth = f.Rec
	return f
}

func TestSmootherHysteresis(t *testing.T) {
	sm := NewSmoother(0, 3)
	seq := []int{1, 1, 0, 1, 1, 1, 0, 0, 0}
	wantState := []int{0, 0, 0, 0, 0, 1, 1, 1, 0}
	wantFlip := []bool{false, false, false, false, false, true, false, false, true}
	for i, p := range seq {
		st, fl := sm.Push(p)
		if st != wantState[i] || fl != wantFlip[i] {
			t.Fatalf("step %d: got (%d,%v), want (%d,%v)", i, st, fl, wantState[i], wantFlip[i])
		}
	}
}

func TestCleanFramesPassThroughUnchanged(t *testing.T) {
	prim := &fakePred{p: 0.9, pred: 1}
	reg := obs.NewRegistry()
	rt, err := New(Config{Primary: prim, PrimaryUsesEnv: true, Fallback: &fakePred{}, Observer: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f := frame(i, 20+float64(i))
		d := rt.Process(f)
		if d.Mode != ModePrimary || d.CSIImputed || d.EnvImputed {
			t.Fatalf("frame %d: clean frame altered: %+v", i, d)
		}
		if d.P != 0.9 || d.Pred != 1 || d.State != 1 {
			t.Fatalf("frame %d: decision %+v", i, d)
		}
		if prim.calls[i] != f.Rec {
			t.Fatalf("frame %d: record mutated before inference", i)
		}
	}
	if p, fb, h := count(reg, "stream_primary_frames_total"), count(reg, "stream_fallback_frames_total"), count(reg, "stream_held_frames_total"); p != 10 || fb != 0 || h != 0 {
		t.Fatalf("counters: primary=%d fallback=%d held=%d", p, fb, h)
	}
}

func TestCSIHoldImputationAndHeldDecisions(t *testing.T) {
	prim := &fakePred{p: 0.8, pred: 1}
	reg := obs.NewRegistry()
	rt, err := New(Config{Primary: prim, MaxHoldGap: 2, Observer: reg})
	if err != nil {
		t.Fatal(err)
	}
	good := frame(0, 20)
	rt.Process(good)

	// Two dropped frames bridge with the held CSI vector.
	for i := 1; i <= 2; i++ {
		f := frame(i, 20)
		f.Dropped = true
		f.Rec.CSI = [64]float64{}
		d := rt.Process(f)
		if !d.CSIImputed || d.Mode != ModePrimary {
			t.Fatalf("drop %d: %+v", i, d)
		}
		if prim.calls[len(prim.calls)-1].CSI != good.Rec.CSI {
			t.Fatalf("drop %d: imputed CSI is not the held vector", i)
		}
	}
	// The third consecutive drop exceeds MaxHoldGap: decision held.
	f := frame(3, 20)
	f.Dropped = true
	d := rt.Process(f)
	if d.Mode != ModeHeld {
		t.Fatalf("long gap not held: %+v", d)
	}
	if d.Pred != 1 || d.P != 0.8 {
		t.Fatalf("held decision lost the previous prediction: %+v", d)
	}
	if imp, h := count(reg, "stream_csi_imputed_total"), count(reg, "stream_held_frames_total"); imp != 2 || h != 1 {
		t.Fatalf("counters: imputed=%d held=%d", imp, h)
	}
}

func TestHeldBeforeAnyFrame(t *testing.T) {
	rt, err := New(Config{Primary: &fakePred{}})
	if err != nil {
		t.Fatal(err)
	}
	f := frame(0, 20)
	f.Dropped = true
	d := rt.Process(f)
	if d.Mode != ModeHeld || d.Pred != 0 {
		t.Fatalf("first-frame drop: %+v", d)
	}
}

func TestEnvImputationHoldAndLinear(t *testing.T) {
	for _, tc := range []struct {
		policy   ImputePolicy
		wantTemp float64
	}{
		{ImputeHold, 22},   // repeat the last reading
		{ImputeLinear, 26}, // 20, 22 at 1-frame spacing → +2/frame, 2 ahead
	} {
		prim := &fakePred{p: 0.6, pred: 1}
		rt, err := New(Config{Primary: prim, PrimaryUsesEnv: true, Imputation: tc.policy})
		if err != nil {
			t.Fatal(err)
		}
		rt.Process(frame(0, 20))
		rt.Process(frame(1, 22))
		f := frame(3, 99) // env missing; 99 must never be seen
		f.EnvOK = false
		f.Rec.Temp, f.Rec.Humidity = 0, 0
		// Frame index inside the runtime is 2, one past the last reading at
		// index 1; linear extrapolation steps 2-1=1... runtime indexes by
		// arrival order, so this is frame 2: 22 + (22-20)/1*1 = 24 for
		// linear. Recompute expectations from arrival order:
		d := rt.Process(f)
		if !d.EnvImputed {
			t.Fatalf("policy %v: env not imputed: %+v", tc.policy, d)
		}
		got := prim.calls[len(prim.calls)-1].Temp
		want := tc.wantTemp
		if tc.policy == ImputeLinear {
			want = 24
		}
		if got != want {
			t.Fatalf("policy %v: imputed temp %g, want %g", tc.policy, got, want)
		}
	}
}

func TestDegradationAndRecovery(t *testing.T) {
	prim := &fakePred{p: 0.9, pred: 1}
	fb := &fakePred{p: 0.2, pred: 0}
	reg := obs.NewRegistry()
	rt, err := New(Config{
		Primary: prim, Fallback: fb, PrimaryUsesEnv: true,
		WatchdogFrames: 5, RecoverFrames: 4, Observer: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	// Healthy warm-up.
	for ; i < 3; i++ {
		rt.Process(frame(i, 20))
	}
	// Env feed dies: within one watchdog interval the runtime degrades.
	firstFallback := -1
	for ; i < 20; i++ {
		f := frame(i, 0)
		f.EnvOK = false
		d := rt.Process(f)
		if d.Mode == ModeFallback && firstFallback < 0 {
			firstFallback = i
		}
	}
	if rt.Mode() != ModeFallback {
		t.Fatalf("runtime did not degrade; mode %v", rt.Mode())
	}
	if firstFallback < 0 || firstFallback-3 > 5 {
		t.Fatalf("fallback started at frame %d, want within one watchdog interval (5) of the outage at 3", firstFallback)
	}
	if d := count(reg, "stream_degradations_total"); d != 1 {
		t.Fatalf("degradations = %d, want 1", d)
	}
	if got := rt.FirstFallbackFrame(); got != firstFallback {
		t.Fatalf("FirstFallbackFrame() = %d, want %d", got, firstFallback)
	}
	// Before the watchdog fired, env was imputed for the primary.
	if count(reg, "stream_env_imputed_total") == 0 {
		t.Fatal("no env imputation before degradation")
	}

	// Feed returns: after RecoverFrames healthy frames, primary resumes.
	for k := 0; k < 4; k++ {
		rt.Process(frame(i, 21))
		i++
	}
	if rt.Mode() != ModePrimary {
		t.Fatalf("runtime did not recover; mode %v", rt.Mode())
	}
	if r := count(reg, "stream_recoveries_total"); r != 1 {
		t.Fatalf("recoveries = %d, want 1", r)
	}
}

func TestNoFallbackWhenPrimaryIgnoresEnv(t *testing.T) {
	prim := &fakePred{p: 0.9, pred: 1}
	fb := &fakePred{p: 0.2, pred: 0}
	rt, err := New(Config{Primary: prim, Fallback: fb, WatchdogFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f := frame(i, 0)
		f.EnvOK = false
		d := rt.Process(f)
		if d.Mode != ModePrimary || d.EnvImputed {
			t.Fatalf("CSI-only primary reacted to env fault: %+v", d)
		}
	}
	if len(fb.calls) != 0 {
		t.Fatalf("fallback was consulted %d times", len(fb.calls))
	}
}

func TestFallbackFromFirstFrameWhenEnvNeverArrives(t *testing.T) {
	prim := &fakePred{p: 0.9, pred: 1}
	fb := &fakePred{p: 0.2, pred: 0}
	rt, err := New(Config{Primary: prim, Fallback: fb, PrimaryUsesEnv: true, WatchdogFrames: 50})
	if err != nil {
		t.Fatal(err)
	}
	f := frame(0, 0)
	f.EnvOK = false
	d := rt.Process(f)
	if d.Mode != ModeFallback {
		t.Fatalf("first frame without env not served by fallback: %+v", d)
	}
	if len(prim.calls) != 0 {
		t.Fatalf("primary ran without any env reading")
	}
}

func TestNewRequiresPrimary(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without a primary detector")
	}
}

func TestRunConsumesBoundedQueue(t *testing.T) {
	prim := &fakePred{p: 0.7, pred: 1}
	rt, err := New(Config{Primary: prim, ReadTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan fault.Frame, 4) // bounded queue
	go func() {
		for i := 0; i < 50; i++ {
			ch <- frame(i, 20) // blocks when the queue is full: backpressure
		}
		close(ch)
	}()
	n := 0
	err = rt.Run(context.Background(), ch, func(f fault.Frame, d Decision) error {
		if f.Index != n {
			t.Errorf("frame %d arrived out of order (want %d)", f.Index, n)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("consumed %d frames, want 50", n)
	}
}

func TestRunDetectsDeadFeed(t *testing.T) {
	reg := obs.NewRegistry()
	rt, err := New(Config{
		Primary:          &fakePred{},
		ReadTimeout:      5 * time.Millisecond,
		BackoffInitial:   time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		DeadFeedTimeouts: 3,
		Observer:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan fault.Frame) // nobody ever sends
	start := time.Now()
	err = rt.Run(context.Background(), ch, func(fault.Frame, Decision) error { return nil })
	if !errors.Is(err, ErrDeadFeed) {
		t.Fatalf("err = %v, want ErrDeadFeed", err)
	}
	if dead, to := count(reg, "stream_dead_feeds_total"), count(reg, "stream_read_timeouts_total"); dead != 1 || to != 3 {
		t.Fatalf("counters: deadFeeds=%d readTimeouts=%d", dead, to)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("dead-feed detection took too long")
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	rt, err := New(Config{Primary: &fakePred{}, ReadTimeout: 10 * time.Millisecond, BackoffInitial: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan fault.Frame)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if err := rt.Run(ctx, ch, func(fault.Frame, Decision) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPropagatesHandlerError(t *testing.T) {
	rt, err := New(Config{Primary: &fakePred{}})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan fault.Frame, 1)
	ch <- frame(0, 20)
	sentinel := errors.New("stop")
	if err := rt.Run(context.Background(), ch, func(fault.Frame, Decision) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestSmoothedRuntimeCountsFlips(t *testing.T) {
	// Predictor alternates every 4 frames; with need=3 the smoother flips
	// once per plateau.
	alt := &altPred{}
	reg := obs.NewRegistry()
	rt, err := New(Config{Primary: alt, SmootherNeed: 3, Observer: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		rt.Process(frame(i, 20))
	}
	if got := count(reg, "stream_flips_total"); got != 3 {
		t.Fatalf("flips = %d, want 3", got)
	}
}

type altPred struct{ n int }

func (a *altPred) PredictRecord(*dataset.Record) (float64, int) {
	a.n++
	if (a.n-1)/4%2 == 1 {
		return 0.9, 1
	}
	return 0.1, 0
}

// TestObserverDoesNotChangeDecisions replays one degrading trace through two
// identically-configured runtimes — one with a live metrics registry, one
// with the nil default — and requires every decision to match bit for bit.
// Instruments only count; they must never feed back into the pipeline
// (DESIGN.md §10). It also cross-checks the stream_* series against counts
// reconstructed from the decision sequence itself.
func TestObserverDoesNotChangeDecisions(t *testing.T) {
	trace := make([]fault.Frame, 60)
	for i := range trace {
		f := frame(i, 20+float64(i%5))
		if i >= 10 && i < 35 {
			f.EnvOK = false // env outage: imputation, then degradation
		}
		if i%13 == 7 {
			f.Dropped = true // CSI gaps: hold-imputation path
		}
		trace[i] = f
	}

	run := func(o obs.Observer) []Decision {
		rt, err := New(Config{
			Primary:        &fakePred{p: 0.9, pred: 1},
			Fallback:       &fakePred{p: 0.2, pred: 0},
			PrimaryUsesEnv: true,
			WatchdogFrames: 5,
			RecoverFrames:  4,
			SmootherNeed:   2,
			Observer:       o,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Decision, len(trace))
		for i, f := range trace {
			out[i] = rt.Process(f)
		}
		return out
	}

	plain := run(nil)
	reg := obs.NewRegistry()
	observed := run(reg)

	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("frame %d: decision diverged with observer: %+v != %+v",
				i, observed[i], plain[i])
		}
	}

	// Reconstruct the expected counters from the decisions: every series the
	// runtime exports per frame is derivable from the Decision stream.
	var want struct {
		primary, fallback, held         int
		csiImputed, envImputed          int
		degradations, recoveries, flips int
	}
	mode := ModePrimary
	for _, d := range plain {
		switch d.Mode {
		case ModePrimary:
			want.primary++
		case ModeFallback:
			want.fallback++
		case ModeHeld:
			want.held++
		}
		if d.Mode != ModeHeld { // held frames don't change the underlying mode
			if mode == ModePrimary && d.Mode == ModeFallback {
				want.degradations++
			}
			if mode == ModeFallback && d.Mode == ModePrimary {
				want.recoveries++
			}
			mode = d.Mode
		}
		if d.CSIImputed {
			want.csiImputed++
		}
		if d.EnvImputed {
			want.envImputed++
		}
		if d.Flipped {
			want.flips++
		}
	}

	snap := reg.Snapshot()
	checks := []struct {
		name string
		want int
	}{
		{"stream_frames_total", len(trace)},
		{"stream_primary_frames_total", want.primary},
		{"stream_fallback_frames_total", want.fallback},
		{"stream_held_frames_total", want.held},
		{"stream_csi_imputed_total", want.csiImputed},
		{"stream_env_imputed_total", want.envImputed},
		{"stream_degradations_total", want.degradations},
		{"stream_recoveries_total", want.recoveries},
		{"stream_flips_total", want.flips},
	}
	for _, c := range checks {
		m, ok := snap.Get(c.name)
		if !ok {
			t.Fatalf("series %s missing from registry", c.name)
		}
		if int(m.Value) != c.want {
			t.Errorf("%s = %v, want %d (reconstructed from decisions)", c.name, m.Value, c.want)
		}
	}
	// The trace must actually exercise both transitions for the counter
	// checks above to mean anything.
	if want.degradations == 0 || want.recoveries == 0 {
		t.Fatalf("trace did not degrade and recover: %+v", want)
	}
	// Decision latency is observed per frame by Run (the channel-driven
	// loop), not by direct Process calls; here it must exist but stay empty.
	if m, ok := snap.Get("stream_decision_latency_seconds"); !ok || m.Count != 0 {
		t.Errorf("stream_decision_latency_seconds = %+v, want registered with 0 observations", m)
	}
}
