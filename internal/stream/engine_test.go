package stream_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stream"
)

// TestRuntimeOnEngineBitIdentical is the rewiring guarantee: a Runtime
// whose Predictors are served through the batched inference engine
// (core.DetectorEngine) must emit exactly the decision sequence of a
// Runtime calling the detectors directly — same probabilities (bit for
// bit), same labels, same mode transitions — across a faulty stream that
// exercises imputation, fallback and recovery.
func TestRuntimeOnEngineBitIdentical(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(1.0/30, 9)
	gcfg.Start = time.Date(2022, 1, 5, 8, 0, 0, 0, time.UTC)
	gcfg.Duration = 26 * time.Hour
	d, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := core.DefaultDetectorConfig()
	dcfg.Hidden = []int{32, 16}
	dcfg.Train.Epochs = 4
	primary, err := core.TrainDetector(d, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg.Features = dataset.FeatCSI
	fallback, err := core.TrainDetector(d, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	// A moderately hostile frame sequence: drops, env outages, recovery.
	inj := fault.NewInjector(fault.DefaultProfile(3).Scale(0.8))
	frames := make([]fault.Frame, 0, 600)
	for i := 0; i < 600; i++ {
		frames = append(frames, inj.Apply(d.Records[i%d.Len()]))
	}

	directReg := obs.NewRegistry()
	runCfg := stream.Config{
		Primary:        primary,
		Fallback:       fallback,
		PrimaryUsesEnv: true,
		WatchdogFrames: 10,
		RecoverFrames:  20,
		SmootherNeed:   3,
		Observer:       directReg,
	}
	direct, err := stream.New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantDecs []stream.Decision
	for _, f := range frames {
		wantDecs = append(wantDecs, direct.Process(f))
	}

	pe, err := core.NewDetectorEngine(primary, core.ServeConfig{Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	fe, err := core.NewDetectorEngine(fallback, core.ServeConfig{Workers: 2, MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	servedReg := obs.NewRegistry()
	engCfg := runCfg
	engCfg.Primary = pe
	engCfg.Fallback = fe
	engCfg.Observer = servedReg
	served, err := stream.New(engCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		got := served.Process(f)
		if got != wantDecs[i] {
			t.Fatalf("frame %d: engine-served decision %+v != direct %+v", i, got, wantDecs[i])
		}
	}
	for _, name := range []string{
		"stream_frames_total", "stream_primary_frames_total",
		"stream_fallback_frames_total", "stream_held_frames_total",
		"stream_csi_imputed_total", "stream_env_imputed_total",
		"stream_degradations_total", "stream_recoveries_total",
		"stream_flips_total",
	} {
		dv := directReg.Counter(name, "").Value()
		sv := servedReg.Counter(name, "").Value()
		if dv != sv {
			t.Errorf("%s diverges: direct %d != engine-served %d", name, dv, sv)
		}
	}
	if direct.FirstFallbackFrame() != served.FirstFallbackFrame() {
		t.Fatalf("first fallback frame diverges: direct %d != engine-served %d",
			direct.FirstFallbackFrame(), served.FirstFallbackFrame())
	}
}
