package linmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// anisotropic generates samples stretched along a planted direction.
func anisotropic(rng *rand.Rand, n, d int, dir []float64, scale float64) *tensor.Matrix {
	x := tensor.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * scale
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = t*dir[j] + 0.1*rng.NormFloat64() + 5 // +5: non-zero mean
		}
	}
	return x
}

func TestPCARecoversPlantedDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := []float64{0.6, 0.8, 0, 0}
	x := anisotropic(rng, 500, 4, dir, 3)
	p, err := FitPCA(x, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// First component aligns with the planted direction (up to sign).
	c0 := p.Components.Row(0)
	dot := math.Abs(tensor.Dot(c0, dir))
	if dot < 0.99 {
		t.Fatalf("first component misaligned: |cos|=%g (%v)", dot, c0)
	}
	// Dominant eigenvalue ≈ planted variance 9 (+ noise floor).
	if p.Explained[0] < 7 || p.Explained[0] > 11 {
		t.Fatalf("eigenvalue %g", p.Explained[0])
	}
	// Components orthonormal.
	if p.Orthonormality() > 1e-6 {
		t.Fatalf("orthonormality deviation %g", p.Orthonormality())
	}
	// Eigenvalues non-increasing.
	if p.Explained[1] > p.Explained[0]+1e-9 {
		t.Fatalf("eigenvalues out of order: %v", p.Explained)
	}
}

func TestPCATransformAndReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := []float64{1, 0, 0}
	x := anisotropic(rng, 300, 3, dir, 2)
	p, err := FitPCA(x, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := p.Transform(x)
	if z.Rows != 300 || z.Cols != 1 {
		t.Fatal("projection shape")
	}
	back := p.InverseTransform(z)
	// Rank-1 reconstruction recovers most of the variance.
	var rss, tss float64
	means := x.ColMeans()
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			rss += (x.At(i, j) - back.At(i, j)) * (x.At(i, j) - back.At(i, j))
			tss += (x.At(i, j) - means[j]) * (x.At(i, j) - means[j])
		}
	}
	if rss/tss > 0.05 {
		t.Fatalf("rank-1 reconstruction error %g too high", rss/tss)
	}
	// Explained ratio of the dominant component near 1.
	ratios := p.ExplainedRatio(TotalVariance(x))
	if ratios[0] < 0.9 {
		t.Fatalf("explained ratio %g", ratios[0])
	}
}

func TestPCAFullRankIdentity(t *testing.T) {
	// k = d: projection then inverse is (numerically) the identity.
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewMatrix(100, 4).RandomizeNormal(rng, 1)
	p, err := FitPCA(x, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	back := p.InverseTransform(p.Transform(x))
	for i := range x.Data {
		if math.Abs(x.Data[i]-back.Data[i]) > 1e-6 {
			t.Fatalf("full-rank roundtrip drift at %d: %g vs %g", i, x.Data[i], back.Data[i])
		}
	}
}

func TestPCAValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewMatrix(10, 3).RandomizeNormal(rng, 1)
	if _, err := FitPCA(x, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := FitPCA(x, 4, 1); err == nil {
		t.Fatal("k>d accepted")
	}
	if _, err := FitPCA(tensor.NewMatrix(1, 3), 1, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	p, err := FitPCA(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected width panic")
		}
	}()
	p.Transform(tensor.NewMatrix(1, 5))
}

func TestPCADeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.NewMatrix(200, 6).RandomizeNormal(rng, 1)
	a, err := FitPCA(x, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitPCA(x, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Components.Data {
		if a.Components.Data[i] != b.Components.Data[i] {
			t.Fatal("PCA must be deterministic for a seed")
		}
	}
}
