// Package linmodel implements the linear baselines the paper compares
// against: a logistic-regression classifier (the scikit-learn
// LogisticRegression stand-in for Table IV) and an ordinary-least-squares /
// ridge linear regressor (Table V), plus the feature standardiser both
// share with the MLP pipeline.
package linmodel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Scaler standardises features to zero mean and unit variance, the usual
// preprocessing for both linear models and MLPs.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes column statistics from x.
func FitScaler(x *tensor.Matrix) *Scaler {
	s := &Scaler{Mean: x.ColMeans(), Std: make([]float64, x.Cols)}
	for j := 0; j < x.Cols; j++ {
		var ss float64
		for i := 0; i < x.Rows; i++ {
			d := x.At(i, j) - s.Mean[j]
			ss += d * d
		}
		std := 0.0
		if x.Rows > 0 {
			std = math.Sqrt(ss / float64(x.Rows))
		}
		if std < 1e-12 {
			std = 1 // constant column: leave centred values at zero
		}
		s.Std[j] = std
	}
	return s
}

// Transform returns a standardised copy of x.
func (s *Scaler) Transform(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(s.Mean) {
		panic(fmt.Sprintf("linmodel: Transform width %d != %d", x.Cols, len(s.Mean)))
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformRow standardises a single sample in place.
func (s *Scaler) TransformRow(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("linmodel: TransformRow width %d != %d", len(row), len(s.Mean)))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}

// Logistic is a binary logistic-regression classifier trained by mini-batch
// gradient descent with L2 regularisation.
type Logistic struct {
	W []float64
	B float64
}

// LogisticConfig controls Logistic.Fit.
type LogisticConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	L2        float64
	Seed      int64
}

// Validate reports whether the configuration is trainable (zero sizes are
// defaulted by Fit, so only negative values fail).
func (c LogisticConfig) Validate() error {
	if c.Epochs < 0 || c.BatchSize < 0 {
		return fmt.Errorf("linmodel: negative training sizes (epochs %d, batch %d)", c.Epochs, c.BatchSize)
	}
	if c.LR < 0 || c.L2 < 0 {
		return fmt.Errorf("linmodel: negative rates (lr %g, l2 %g)", c.LR, c.L2)
	}
	return nil
}

// DefaultLogisticConfig mirrors scikit-learn-ish defaults adapted to GD.
func DefaultLogisticConfig() LogisticConfig {
	return LogisticConfig{Epochs: 30, BatchSize: 256, LR: 0.1, L2: 1e-4, Seed: 1}
}

// Fit trains on rows of x with binary labels y.
func (l *Logistic) Fit(x *tensor.Matrix, y []int, cfg LogisticConfig) {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("linmodel: Logistic.Fit rows %d != labels %d", x.Rows, len(y)))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows {
		cfg.BatchSize = x.Rows
	}
	l.W = make([]float64, x.Cols)
	l.B = 0
	if x.Rows == 0 {
		return
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	gw := make([]float64, x.Cols)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for j := range gw {
				gw[j] = 0
			}
			var gb float64
			for _, si := range idx[start:end] {
				row := x.Row(si)
				p := nn.SigmoidScalar(tensor.Dot(l.W, row) + l.B)
				e := p - float64(y[si])
				tensor.Axpy(gw, e, row)
				gb += e
			}
			inv := 1 / float64(end-start)
			for j := range l.W {
				l.W[j] -= cfg.LR * (gw[j]*inv + cfg.L2*l.W[j])
			}
			l.B -= cfg.LR * gb * inv
		}
	}
}

// PredictProb returns P(class=1) for one sample.
func (l *Logistic) PredictProb(row []float64) float64 {
	return nn.SigmoidScalar(tensor.Dot(l.W, row) + l.B)
}

// Predict thresholds PredictProb at 0.5 for each row of x.
func (l *Logistic) Predict(x *tensor.Matrix) []int {
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		if l.PredictProb(x.Row(i)) >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// Linear is a least-squares linear regressor (optionally ridge-regularised)
// solved in closed form via the normal equations, supporting multiple
// targets at once.
type Linear struct {
	W *tensor.Matrix // features × targets
	B []float64      // per-target intercept
}

// FitLinear solves min ||X·W + b − Y||² (+ ridge·||W||²) with intercepts
// handled by centring, the textbook OLS route the paper uses for Table V.
func FitLinear(x, y *tensor.Matrix, ridge float64) (*Linear, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("linmodel: FitLinear rows %d vs %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("linmodel: FitLinear on empty data")
	}
	xm := x.ColMeans()
	ym := y.ColMeans()
	xc := x.Clone()
	for i := 0; i < xc.Rows; i++ {
		row := xc.Row(i)
		for j := range row {
			row[j] -= xm[j]
		}
	}
	yc := y.Clone()
	for i := 0; i < yc.Rows; i++ {
		row := yc.Row(i)
		for j := range row {
			row[j] -= ym[j]
		}
	}
	xtx := tensor.MatMulATB(nil, xc, xc)
	xty := tensor.MatMulATB(nil, xc, yc)
	w, err := tensor.SolveSPD(xtx, xty, ridge)
	if err != nil {
		return nil, fmt.Errorf("linmodel: normal equations: %w", err)
	}
	b := make([]float64, y.Cols)
	for t := 0; t < y.Cols; t++ {
		b[t] = ym[t]
		for j := 0; j < x.Cols; j++ {
			b[t] -= w.At(j, t) * xm[j]
		}
	}
	return &Linear{W: w, B: b}, nil
}

// Predict returns the fitted values for each row of x, one slice per target.
func (l *Linear) Predict(x *tensor.Matrix) [][]float64 {
	if x.Cols != l.W.Rows {
		panic(fmt.Sprintf("linmodel: Predict width %d != %d", x.Cols, l.W.Rows))
	}
	pred := tensor.MatMul(nil, x, l.W)
	pred.AddRowVector(l.B)
	cols := make([][]float64, pred.Cols)
	for c := range cols {
		col := make([]float64, pred.Rows)
		for r := 0; r < pred.Rows; r++ {
			col[r] = pred.At(r, c)
		}
		cols[c] = col
	}
	return cols
}

// PredictRow returns the fitted values for one sample.
func (l *Linear) PredictRow(row []float64) []float64 {
	out := make([]float64, l.W.Cols)
	for t := range out {
		s := l.B[t]
		for j, v := range row {
			s += v * l.W.At(j, t)
		}
		out[t] = s
	}
	return out
}
