package linmodel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// PCA is a principal-component projection fitted by orthogonal power
// iteration on the covariance matrix — the dimensionality-reduction
// front-end much of the CSI-sensing literature applies to the 64-subcarrier
// vector before classification. The preprocessing ablation uses it to test
// whether the paper's raw-amplitude pipeline leaves accuracy on the table.
type PCA struct {
	Mean       []float64
	Components *tensor.Matrix // k × d, rows are orthonormal directions
	Explained  []float64      // per-component variance
}

// FitPCA extracts the top-k principal components of x (n×d). k must be in
// [1, d]. Deterministic for a given seed.
func FitPCA(x *tensor.Matrix, k int, seed int64) (*PCA, error) {
	if x.Rows < 2 {
		return nil, fmt.Errorf("linmodel: PCA needs ≥2 samples, got %d", x.Rows)
	}
	if k < 1 || k > x.Cols {
		return nil, fmt.Errorf("linmodel: PCA k=%d out of [1,%d]", k, x.Cols)
	}
	d := x.Cols
	mean := x.ColMeans()
	// Covariance (d×d), fine for d ≤ a few hundred (we have 64).
	centered := x.Clone()
	for i := 0; i < centered.Rows; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mean[j]
		}
	}
	cov := tensor.MatMulATB(nil, centered, centered)
	cov.Scale(1 / float64(x.Rows))

	p := &PCA{Mean: mean, Components: tensor.NewMatrix(k, d), Explained: make([]float64, k)}
	rng := rand.New(rand.NewSource(seed))
	work := cov.Clone()
	v := make([]float64, d)
	for c := 0; c < k; c++ {
		// Power iteration on the deflated covariance.
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		normalize(v)
		var lambda float64
		for it := 0; it < 500; it++ {
			w := tensor.MatVec(work, v)
			l := tensor.Norm2(w)
			if l == 0 {
				break // exhausted the spectrum
			}
			tensor.ScaleVec(w, 1/l)
			delta := 0.0
			for j := range v {
				dv := w[j] - v[j]
				if dv < 0 {
					dv = -dv
				}
				if dv > delta {
					delta = dv
				}
			}
			copy(v, w)
			lambda = l
			if delta < 1e-12 {
				break
			}
		}
		copy(p.Components.Row(c), v)
		p.Explained[c] = lambda
		// Deflate: work -= λ·vvᵀ.
		for i := 0; i < d; i++ {
			vi := v[i]
			if vi == 0 {
				continue
			}
			row := work.Row(i)
			for j := 0; j < d; j++ {
				row[j] -= lambda * vi * v[j]
			}
		}
	}
	return p, nil
}

func normalize(v []float64) {
	n := tensor.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	tensor.ScaleVec(v, 1/n)
}

// Transform projects x (n×d) onto the fitted components, returning n×k.
func (p *PCA) Transform(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != len(p.Mean) {
		panic(fmt.Sprintf("linmodel: PCA.Transform width %d != %d", x.Cols, len(p.Mean)))
	}
	k := p.Components.Rows
	out := tensor.NewMatrix(x.Rows, k)
	row := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(row, x.Row(i))
		for j := range row {
			row[j] -= p.Mean[j]
		}
		for c := 0; c < k; c++ {
			out.Set(i, c, tensor.Dot(p.Components.Row(c), row))
		}
	}
	return out
}

// ExplainedRatio returns each component's share of the total variance in
// the fitted data (components ∑ ≤ 1; the remainder lives off-subspace).
func (p *PCA) ExplainedRatio(totalVariance float64) []float64 {
	out := make([]float64, len(p.Explained))
	if totalVariance <= 0 {
		return out
	}
	for i, v := range p.Explained {
		out[i] = v / totalVariance
	}
	return out
}

// TotalVariance sums the per-column variances of x, the denominator for
// ExplainedRatio.
func TotalVariance(x *tensor.Matrix) float64 {
	if x.Rows == 0 {
		return 0
	}
	means := x.ColMeans()
	var total float64
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - means[j]
			total += d * d
		}
	}
	return total / float64(x.Rows)
}

// InverseTransform maps projected rows (n×k) back into the original space
// (n×d) — the rank-k denoised reconstruction.
func (p *PCA) InverseTransform(z *tensor.Matrix) *tensor.Matrix {
	k := p.Components.Rows
	if z.Cols != k {
		panic(fmt.Sprintf("linmodel: InverseTransform width %d != %d", z.Cols, k))
	}
	d := len(p.Mean)
	out := tensor.NewMatrix(z.Rows, d)
	for i := 0; i < z.Rows; i++ {
		row := out.Row(i)
		copy(row, p.Mean)
		for c := 0; c < k; c++ {
			tensor.Axpy(row, z.At(i, c), p.Components.Row(c))
		}
	}
	return out
}

// Orthonormality measures the worst deviation of the component rows from
// perfect orthonormality (0 = exact), a diagnostic used by tests.
func (p *PCA) Orthonormality() float64 {
	k := p.Components.Rows
	var worst float64
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			dot := tensor.Dot(p.Components.Row(i), p.Components.Row(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if dev := math.Abs(dot - want); dev > worst {
				worst = dev
			}
		}
	}
	return worst
}
