package linmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestScalerStandardises(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 100}, {2, 200}, {3, 300}})
	s := FitScaler(x)
	z := s.Transform(x)
	for j := 0; j < 2; j++ {
		col := []float64{z.At(0, j), z.At(1, j), z.At(2, j)}
		if math.Abs(stats.Mean(col)) > 1e-12 {
			t.Fatalf("column %d mean %g", j, stats.Mean(col))
		}
		if math.Abs(stats.StdDev(col)-1) > 1e-12 {
			t.Fatalf("column %d std %g", j, stats.StdDev(col))
		}
	}
	// Original untouched.
	if x.At(0, 0) != 1 {
		t.Fatal("Transform must not mutate input")
	}
}

func TestScalerConstantColumn(t *testing.T) {
	x := tensor.FromRows([][]float64{{5, 1}, {5, 2}})
	s := FitScaler(x)
	z := s.Transform(x)
	if z.At(0, 0) != 0 || z.At(1, 0) != 0 {
		t.Fatal("constant column must map to zero")
	}
	if math.IsNaN(z.At(0, 1)) {
		t.Fatal("NaN leak")
	}
}

func TestScalerTransformRow(t *testing.T) {
	x := tensor.FromRows([][]float64{{0}, {2}})
	s := FitScaler(x)
	row := []float64{2}
	s.TransformRow(row)
	if math.Abs(row[0]-1) > 1e-12 {
		t.Fatalf("TransformRow got %g", row[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected width panic")
		}
	}()
	s.TransformRow([]float64{1, 2})
}

func TestLogisticSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 400
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a+2*b > 0.5 {
			y[i] = 1
		}
	}
	var lr Logistic
	lr.Fit(x, y, DefaultLogisticConfig())
	pred := lr.Predict(x)
	if acc := stats.Accuracy(y, pred); acc < 0.95 {
		t.Fatalf("separable accuracy %g", acc)
	}
	// The learned direction should correlate with (1, 2).
	if lr.W[1] < lr.W[0] {
		t.Fatalf("weight ordering wrong: %v", lr.W)
	}
}

func TestLogisticCannotSolveXOR(t *testing.T) {
	// The paper's point: a linear classifier cannot capture non-linear
	// structure. XOR accuracy should hover near chance.
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []int{0, 1, 1, 0}
	var lr Logistic
	cfg := DefaultLogisticConfig()
	cfg.Epochs = 200
	lr.Fit(x, y, cfg)
	if acc := stats.Accuracy(y, lr.Predict(x)); acc > 0.75 {
		t.Fatalf("logistic regression should not solve XOR, acc=%g", acc)
	}
}

func TestLogisticEmptyAndMismatch(t *testing.T) {
	var lr Logistic
	lr.Fit(tensor.NewMatrix(0, 3), nil, DefaultLogisticConfig())
	if len(lr.W) != 3 || lr.B != 0 {
		t.Fatal("empty fit must produce zero model")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected mismatch panic")
		}
	}()
	lr.Fit(tensor.NewMatrix(2, 3), []int{1}, DefaultLogisticConfig())
}

func TestFitLinearRecoversPlantedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 300
	x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		y.Set(i, 0, 2*r[0]-1*r[1]+0.5*r[2]+3)
		y.Set(i, 1, -r[0]+4*r[2]-2)
	}
	lin, err := FitLinear(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantW := [][]float64{{2, -1}, {-1, 0}, {0.5, 4}}
	for j := 0; j < 3; j++ {
		for c := 0; c < 2; c++ {
			if math.Abs(lin.W.At(j, c)-wantW[j][c]) > 1e-8 {
				t.Fatalf("W[%d][%d]=%g want %g", j, c, lin.W.At(j, c), wantW[j][c])
			}
		}
	}
	if math.Abs(lin.B[0]-3) > 1e-8 || math.Abs(lin.B[1]+2) > 1e-8 {
		t.Fatalf("intercepts %v", lin.B)
	}
	// Predict matches construction.
	pred := lin.Predict(x)
	for i := 0; i < n; i++ {
		if math.Abs(pred[0][i]-y.At(i, 0)) > 1e-8 {
			t.Fatal("prediction mismatch")
		}
	}
	// PredictRow agrees with Predict.
	pr := lin.PredictRow(x.Row(0))
	if math.Abs(pr[0]-pred[0][0]) > 1e-12 || math.Abs(pr[1]-pred[1][0]) > 1e-12 {
		t.Fatal("PredictRow mismatch")
	}
}

func TestFitLinearCollinearWithRidge(t *testing.T) {
	// Duplicate feature columns: OLS is singular, the ridge path must save it.
	rng := rand.New(rand.NewSource(33))
	n := 100
	x := tensor.NewMatrix(n, 2)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y.Set(i, 0, 3*v+1)
	}
	lin, err := FitLinear(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	pred := lin.Predict(x)
	if stats.MAE(pred[0], colOf(y, 0)) > 1e-3 {
		t.Fatalf("collinear fit MAE too high")
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(tensor.NewMatrix(2, 1), tensor.NewMatrix(3, 1), 0); err == nil {
		t.Fatal("expected row mismatch error")
	}
	if _, err := FitLinear(tensor.NewMatrix(0, 1), tensor.NewMatrix(0, 1), 0); err == nil {
		t.Fatal("expected empty-data error")
	}
}

// Property: OLS residuals are orthogonal to every feature column (the normal
// equations' defining property).
func TestQuickOLSResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		x := tensor.NewMatrix(n, d).RandomizeNormal(rng, 1)
		y := tensor.NewMatrix(n, 1).RandomizeNormal(rng, 2)
		lin, err := FitLinear(x, y, 0)
		if err != nil {
			return true // singular draw; skip
		}
		pred := lin.Predict(x)[0]
		res := make([]float64, n)
		for i := range res {
			res[i] = y.At(i, 0) - pred[i]
		}
		for j := 0; j < d; j++ {
			col := colOf(x, j)
			// Centre the column: orthogonality holds for centred features
			// because of the fitted intercept.
			m := stats.Mean(col)
			var dot float64
			for i := range col {
				dot += (col[i] - m) * res[i]
			}
			if math.Abs(dot)/float64(n) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func colOf(m *tensor.Matrix, j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}
