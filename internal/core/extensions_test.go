package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func TestEvaluateMultiClass(t *testing.T) {
	truth := []int{0, 0, 1, 2, 2, 2}
	pred := []int{0, 1, 1, 2, 2, 0}
	res := EvaluateMultiClass(truth, pred, 3)
	if res.Accuracy != 4.0/6 {
		t.Fatalf("accuracy %g", res.Accuracy)
	}
	if res.Confusion[0][1] != 1 || res.Confusion[2][0] != 1 || res.Confusion[2][2] != 2 {
		t.Fatalf("confusion %v", res.Confusion)
	}
	if res.Recall[0] != 0.5 || res.Recall[1] != 1 || res.Recall[2] != 2.0/3 {
		t.Fatalf("recall %v", res.Recall)
	}
	empty := EvaluateMultiClass(nil, nil, 2)
	if empty.Accuracy != 0 || empty.Recall[0] != 0 {
		t.Fatal("empty eval")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	EvaluateMultiClass([]int{0}, []int{0, 1}, 2)
}

func TestTrainActivityAndPredict(t *testing.T) {
	_, split := testSplit(t)
	acfg := DefaultActivityConfig()
	acfg.Hidden = []int{32, 16}
	acfg.Train.Epochs = 8
	acfg.Train.BatchSize = 64
	train := thin(split.Train, 1500)
	clf, err := TrainActivity(train, acfg)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample: must comfortably beat the majority class.
	truth := train.ActivityLabels()
	pred := clf.Predict(train)
	res := EvaluateMultiClass(truth, pred, dataset.NumActivities)
	major := map[int]int{}
	for _, l := range truth {
		major[l]++
	}
	best := 0
	for _, c := range major {
		if c > best {
			best = c
		}
	}
	baseline := float64(best) / float64(len(truth))
	if res.Accuracy <= baseline {
		t.Fatalf("activity accuracy %.3f not above majority baseline %.3f", res.Accuracy, baseline)
	}
	if _, err := TrainActivity(&dataset.Dataset{}, acfg); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestRunActivity(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunActivity(split, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MLPPerFold) != 5 || len(res.RFPerFold) != 5 {
		t.Fatal("per-fold lengths")
	}
	for i := range res.MLPPerFold {
		if res.MLPPerFold[i] < 0 || res.MLPPerFold[i] > 100 {
			t.Fatalf("fold %d accuracy %g", i, res.MLPPerFold[i])
		}
	}
	if res.MLPAvg <= 0 || res.RFAvg <= 0 {
		t.Fatal("averages")
	}
	// Pooled confusion must cover all evaluated samples.
	total := 0
	for _, row := range res.Pooled.Confusion {
		for _, v := range row {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("empty pooled confusion")
	}
	bad := &dataset.Split{Train: split.Train}
	if _, err := RunActivity(bad, quickCfg()); err == nil {
		t.Fatal("no folds must error")
	}
}

func TestRunCounting(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunCounting(split, 5, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 5 {
		t.Fatal("classes")
	}
	if len(res.MLPExact) != 5 || len(res.RFExact) != 5 {
		t.Fatal("per-fold lengths")
	}
	for i := range res.MLPExact {
		if res.MLPExact[i] < 0 || res.MLPExact[i] > 100 || res.MLPMAE[i] < 0 {
			t.Fatalf("fold %d scores %g/%g", i, res.MLPExact[i], res.MLPMAE[i])
		}
		if res.RFMAE[i] > 4 {
			t.Fatalf("RF counting MAE %g implausible (max class distance is 4)", res.RFMAE[i])
		}
	}
	// Counting must beat always-guessing-the-wrong-extreme: MAE below 2.
	if res.RFMAEAvg > 2 || res.MLPMAEAvg > 2 {
		t.Fatalf("counting MAE too high: RF %g MLP %g", res.RFMAEAvg, res.MLPMAEAvg)
	}
	// Default classes kick in for degenerate input.
	res2, err := RunCounting(split, 0, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Classes != 5 {
		t.Fatal("default classes")
	}
}

func TestCountScores(t *testing.T) {
	exact, mae := countScores([]int{0, 1, 2}, []float64{0, 2, 2})
	if exact != 100.0*2/3 {
		t.Fatalf("exact %g", exact)
	}
	if mae != 1.0/3 {
		t.Fatalf("mae %g", mae)
	}
	if e, m := countScores(nil, nil); e != 0 || m != 0 {
		t.Fatal("empty")
	}
}

func TestRunWindowedActivity(t *testing.T) {
	_, split := testSplit(t)
	cfg := quickCfg()
	res, err := RunWindowedActivity(split, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowN != 6 {
		t.Fatal("window size")
	}
	if len(res.SnapshotPerFold) != 5 || len(res.WindowedPerFold) != 5 {
		t.Fatal("per-fold lengths")
	}
	for i := range res.WindowedPerFold {
		if res.WindowedPerFold[i] < 0 || res.WindowedPerFold[i] > 100 {
			t.Fatalf("accuracy %g", res.WindowedPerFold[i])
		}
	}
	if res.WindowedAvg <= 0 || res.SnapshotAvg <= 0 {
		t.Fatal("averages")
	}
	// Default window for degenerate N.
	res2, err := RunWindowedActivity(split, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WindowN != 10 {
		t.Fatal("default window")
	}
}

func TestThinRows(t *testing.T) {
	x := tensor.NewMatrix(10, 2)
	idx := make([]int, 10)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i))
		idx[i] = i * 3
	}
	ox, oidx := thinRows(x, idx, 4)
	if ox.Rows > 4 || len(oidx) != ox.Rows {
		t.Fatalf("thin shape %d", ox.Rows)
	}
	if ox.At(0, 0) != 0 || oidx[0] != 0 {
		t.Fatal("first row dropped")
	}
	// No-op cases.
	if ox2, _ := thinRows(x, idx, 0); ox2 != x {
		t.Fatal("max 0 must keep all")
	}
	if ox3, _ := thinRows(x, idx, 100); ox3 != x {
		t.Fatal("large cap must keep all")
	}
}
