package core

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/framelog"
)

// writeShadowLog persists n records from the split as a frame log under
// dir, the way the serving tier's durability layer would.
func writeShadowLog(t *testing.T, dir, feed string, recs []dataset.Record) {
	t.Helper()
	w, _, err := framelog.Open(framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}, feed)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]fault.Frame, len(recs))
	for i, r := range recs {
		frames[i] = fault.Frame{Rec: r, Index: i, EnvOK: true, Truth: r}
	}
	if _, err := w.AppendBatch(frames); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func shadowCfg(dir, ckpt string) ShadowTrainConfig {
	return ShadowTrainConfig{
		LogDir:         dir,
		CheckpointPath: ckpt,
		Detector: DetectorConfig{
			Hidden: []int{16, 8},
			Train:  quickDetectorCfg(dataset.FeatCSIEnv).Train,
			Seed:   7,
		},
	}
}

// predictBits fingerprints a detector by the exact bits of its scores over
// a probe set.
func predictBits(d *Detector, recs []dataset.Record) []uint64 {
	out := make([]uint64, len(recs))
	for i := range recs {
		p, _ := d.PredictRecord(&recs[i])
		out[i] = math.Float64bits(p)
	}
	return out
}

func TestShadowTrainValidate(t *testing.T) {
	if err := (ShadowTrainConfig{}).Validate(); err == nil {
		t.Fatal("empty config validated")
	}
	if err := (ShadowTrainConfig{LogDir: "x"}).Validate(); err == nil {
		t.Fatal("missing checkpoint path validated")
	}
	if err := (ShadowTrainConfig{LogDir: "x", CheckpointPath: "y", MaxFrames: -1}).Validate(); err == nil {
		t.Fatal("negative MaxFrames validated")
	}
	if _, _, err := ShadowTrain(nil, ShadowTrainConfig{LogDir: "x", CheckpointPath: "y"}); err == nil {
		t.Fatal("nil active accepted")
	}
}

// TestShadowTrainDeterministicDistill: training from the same log twice
// produces bit-identical candidates, the candidate inherits the active
// feature set, and it substantially agrees with its pseudo-labeler.
func TestShadowTrainDeterministicDistill(t *testing.T) {
	_, split := testSplit(t)
	active, err := TrainDetector(thin(split.Train, 1200), quickDetectorCfg(dataset.FeatCSIEnv))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	logRecs := thin(split.Train, 900).Records
	writeShadowLog(t, dir, "room-a", logRecs[:len(logRecs)/2])
	writeShadowLog(t, dir, "room-b", logRecs[len(logRecs)/2:])

	c1, n1, err := ShadowTrain(active, shadowCfg(dir, filepath.Join(t.TempDir(), "ck1.bin")))
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(logRecs) {
		t.Fatalf("trained on %d frames, logs hold %d", n1, len(logRecs))
	}
	if c1.Features != active.Features {
		t.Fatalf("candidate features %v != active %v", c1.Features, active.Features)
	}

	c2, n2, err := ShadowTrain(active, shadowCfg(dir, filepath.Join(t.TempDir(), "ck2.bin")))
	if err != nil {
		t.Fatal(err)
	}
	probe := logRecs[:200]
	b1, b2 := predictBits(c1, probe), predictBits(c2, probe)
	if n1 != n2 {
		t.Fatalf("frame counts diverged: %d vs %d", n1, n2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("rerun diverged at probe %d", i)
		}
	}

	// The candidate distills the incumbent: high label agreement on the
	// traffic it trained on.
	agree := 0
	for i := range probe {
		_, la := active.PredictRecord(&probe[i])
		_, lc := c1.PredictRecord(&probe[i])
		if la == lc {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(probe)); frac < 0.85 {
		t.Fatalf("candidate agrees with the active model on only %.0f%% of probes", 100*frac)
	}
}

// TestShadowTrainResume: a run interrupted after a checkpoint resumes into
// the bit-identical weight trajectory — the FitCheckpointed contract,
// proven end to end through the log-replay path.
func TestShadowTrainResume(t *testing.T) {
	_, split := testSplit(t)
	active, err := TrainDetector(thin(split.Train, 800), quickDetectorCfg(dataset.FeatCSIEnv))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeShadowLog(t, dir, "room", thin(split.Folds[0], 500).Records)

	full := shadowCfg(dir, filepath.Join(t.TempDir(), "full.bin"))
	full.Detector.Train.Epochs = 4
	want, _, err := ShadowTrain(active, full)
	if err != nil {
		t.Fatal(err)
	}

	// "Interrupted" run: stop after 2 epochs, then re-run to 4 with the
	// same checkpoint path.
	ckpt := filepath.Join(t.TempDir(), "resume.bin")
	part := full
	part.CheckpointPath = ckpt
	part.Detector.Train.Epochs = 2
	if _, _, err := ShadowTrain(active, part); err != nil {
		t.Fatal(err)
	}
	part.Detector.Train.Epochs = 4
	got, _, err := ShadowTrain(active, part)
	if err != nil {
		t.Fatal(err)
	}

	probe := thin(split.Folds[0], 200).Records
	bw, bg := predictBits(want, probe), predictBits(got, probe)
	for i := range bw {
		if bw[i] != bg[i] {
			t.Fatalf("resumed candidate diverged from uninterrupted run at probe %d", i)
		}
	}
}

// TestShadowTrainMaxFrames: the cap truncates deterministically and skips
// dropped frames.
func TestShadowTrainMaxFrames(t *testing.T) {
	_, split := testSplit(t)
	active, err := TrainDetector(thin(split.Train, 800), quickDetectorCfg(dataset.FeatCSIEnv))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	recs := thin(split.Folds[0], 300).Records
	w, _, err := framelog.Open(framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}, "room")
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]fault.Frame, 0, len(recs))
	for i, r := range recs {
		fr := fault.Frame{Rec: r, Index: i, EnvOK: true, Truth: r}
		if i%5 == 0 {
			fr.Dropped = true // no CSI: must not become a training row
		}
		frames = append(frames, fr)
	}
	if _, err := w.AppendBatch(frames); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := shadowCfg(dir, filepath.Join(t.TempDir(), "ck.bin"))
	cfg.Detector.Train.Epochs = 1
	cfg.MaxFrames = 100
	_, n, err := ShadowTrain(active, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("cap ignored: trained on %d frames", n)
	}

	// An empty log errors instead of training on nothing.
	cfg.LogDir = t.TempDir()
	if _, _, err := ShadowTrain(active, cfg); err == nil {
		t.Fatal("empty log dir trained")
	}
}
