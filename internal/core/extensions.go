package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/rf"
	"repro/internal/tensor"
)

// This file implements the paper's stated future work (§VI: "an ML model
// that simultaneously performs occupancy detection and activity
// recognition") plus the occupant-counting task its Table II motivates,
// as extensions on the same substrate.

// ActivityClassifier recognises the 3-class activity state
// (empty / static occupancy / motion) from CSI amplitudes.
type ActivityClassifier struct {
	Net    *nn.Network
	Scaler *linmodel.Scaler
}

// ActivityConfig controls TrainActivity.
type ActivityConfig struct {
	Hidden []int
	Train  nn.TrainConfig
	Seed   int64
}

// Validate reports whether the configuration is trainable (positive hidden
// widths, valid training hyper-parameters). TrainActivity calls it.
func (c ActivityConfig) Validate() error {
	if err := validHidden(c.Hidden); err != nil {
		return err
	}
	return c.Train.Validate()
}

// DefaultActivityConfig mirrors the detector's architecture with a 3-logit
// softmax head.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{
		Hidden: append([]int(nil), PaperHidden...),
		Train:  nn.DefaultTrainConfig(),
		Seed:   1,
	}
}

// TrainActivity fits the activity classifier on CSI features.
func TrainActivity(train *dataset.Dataset, cfg ActivityConfig) (*ActivityClassifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	x, _ := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	labels := train.ActivityLabels()
	y := nn.OneHot(labels, dataset.NumActivities)
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.NewMLP(dataset.FeatCSI.Dim(), cfg.Hidden, dataset.NumActivities, rng)
	// Inverse-frequency weighting: motion samples are a small minority
	// (walking bouts last seconds), and the unweighted objective would
	// simply ignore that class.
	loss := nn.SoftmaxCE{ClassWeights: nn.InverseFrequencyWeights(labels, dataset.NumActivities)}
	net.Fit(xs, y, loss, cfg.Train)
	return &ActivityClassifier{Net: net, Scaler: scaler}, nil
}

// Predict returns the activity class per record.
func (a *ActivityClassifier) Predict(ds *dataset.Dataset) []int {
	x, _ := ds.Matrix(dataset.FeatCSI)
	return a.Net.PredictClasses(a.Scaler.Transform(x))
}

// MultiClassResult summarises a multi-class evaluation: overall accuracy,
// per-class recall, and the full confusion matrix (rows = truth).
type MultiClassResult struct {
	Accuracy  float64
	Confusion [][]int
	Recall    []float64
}

// EvaluateMultiClass scores predictions against truth over k classes.
func EvaluateMultiClass(truth, pred []int, k int) MultiClassResult {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("core: EvaluateMultiClass length mismatch %d vs %d", len(truth), len(pred)))
	}
	res := MultiClassResult{Confusion: make([][]int, k), Recall: make([]float64, k)}
	for i := range res.Confusion {
		res.Confusion[i] = make([]int, k)
	}
	correct := 0
	for i := range truth {
		res.Confusion[truth[i]][pred[i]]++
		if truth[i] == pred[i] {
			correct++
		}
	}
	if len(truth) > 0 {
		res.Accuracy = float64(correct) / float64(len(truth))
	}
	for c := 0; c < k; c++ {
		var row int
		for _, v := range res.Confusion[c] {
			row += v
		}
		if row > 0 {
			res.Recall[c] = float64(res.Confusion[c][c]) / float64(row)
		}
	}
	return res
}

// ActivityResult is the activity-recognition extension outcome: MLP and RF
// per-fold accuracy plus the pooled confusion analysis for the MLP.
type ActivityResult struct {
	MLPPerFold []float64 // percent
	RFPerFold  []float64
	MLPAvg     float64
	RFAvg      float64
	Pooled     MultiClassResult // MLP over all folds pooled
}

// RunActivity trains the activity classifier and an RF baseline on the
// training fold and evaluates both per test fold.
func RunActivity(split *dataset.Split, cfg ExperimentConfig) (*ActivityResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	acfg := ActivityConfig{Hidden: cfg.Hidden, Train: cfg.NNTrain, Seed: cfg.Seed}
	clf, err := TrainActivity(train, acfg)
	if err != nil {
		return nil, err
	}

	// RF baseline: one-vs-rest is unnecessary — CART handles multi-class
	// via per-class probability trees; here we train one forest per class
	// and take the argmax, the standard reduction with binary-leaf trees.
	x, _ := train.Matrix(dataset.FeatCSI)
	labels := train.ActivityLabels()
	forests := make([]*rf.Forest, dataset.NumActivities)
	for c := range forests {
		bin := make([]int, len(labels))
		for i, l := range labels {
			if l == c {
				bin[i] = 1
			}
		}
		fcfg := cfg.RF
		fcfg.Seed = cfg.Seed + int64(c)
		forests[c] = rf.FitClassifier(x, bin, fcfg)
	}
	rfPredict := func(ds *dataset.Dataset) []int {
		xf, _ := ds.Matrix(dataset.FeatCSI)
		out := make([]int, xf.Rows)
		for i := 0; i < xf.Rows; i++ {
			row := xf.Row(i)
			best, bestP := 0, math.Inf(-1)
			for c, f := range forests {
				if p := f.PredictProb(row); p > bestP {
					best, bestP = c, p
				}
			}
			out[i] = best
		}
		return out
	}

	res := &ActivityResult{}
	var pooledTruth, pooledPred []int
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		truth := ev.ActivityLabels()

		mlpPred := clf.Predict(ev)
		mlpAcc := 100 * EvaluateMultiClass(truth, mlpPred, dataset.NumActivities).Accuracy
		res.MLPPerFold = append(res.MLPPerFold, mlpAcc)
		res.MLPAvg += mlpAcc

		rfp := rfPredict(ev)
		rfAcc := 100 * EvaluateMultiClass(truth, rfp, dataset.NumActivities).Accuracy
		res.RFPerFold = append(res.RFPerFold, rfAcc)
		res.RFAvg += rfAcc

		pooledTruth = append(pooledTruth, truth...)
		pooledPred = append(pooledPred, mlpPred...)
	}
	n := float64(len(split.Folds))
	res.MLPAvg /= n
	res.RFAvg /= n
	res.Pooled = EvaluateMultiClass(pooledTruth, pooledPred, dataset.NumActivities)
	return res, nil
}

// WindowedActivityResult compares instantaneous-snapshot activity
// recognition against the windowed front-end (dataset.WindowSpec): the
// per-subcarrier temporal std makes brief walking bouts visible.
type WindowedActivityResult struct {
	WindowN           int
	SnapshotAvg       float64 // instantaneous MLP fold-average accuracy %
	WindowedAvg       float64
	SnapshotMotionRec float64 // pooled recall of the motion class
	WindowedMotionRec float64
	SnapshotPerFold   []float64
	WindowedPerFold   []float64
}

// RunWindowedActivity runs the activity task twice — on raw snapshots and
// on windowed (mean, std) features — quantifying the windowing ablation.
func RunWindowedActivity(split *dataset.Split, windowN int, cfg ExperimentConfig) (*WindowedActivityResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	if windowN < 2 {
		windowN = 10
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	res := &WindowedActivityResult{WindowN: windowN}

	// Baseline: the plain snapshot classifier.
	base, err := RunActivity(split, cfg)
	if err != nil {
		return nil, err
	}
	res.SnapshotAvg = base.MLPAvg
	res.SnapshotPerFold = base.MLPPerFold
	res.SnapshotMotionRec = base.Pooled.Recall[dataset.ActivityMotion]

	// Windowed: same MLP family on (mean, std) features. Windows are
	// computed on the full-rate series (thinning first would stretch a
	// "1-second" window over minutes), then the *rows* are thinned.
	spec := dataset.WindowSpec{N: windowN}
	xwFull, idxFull, err := split.Train.WindowedMatrix(spec)
	if err != nil {
		return nil, err
	}
	xw, idx := thinRows(xwFull, idxFull, cfg.MaxTrainSamples)
	labels := split.Train.WindowedLabels(idx, func(r *dataset.Record) int { return r.ActivityLabel() })
	scaler := linmodel.FitScaler(xw)
	xs := scaler.Transform(xw)
	net := nn.NewMLP(spec.Dim(), cfg.Hidden, dataset.NumActivities, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	wloss := nn.SoftmaxCE{ClassWeights: nn.InverseFrequencyWeights(labels, dataset.NumActivities)}
	net.Fit(xs, nn.OneHot(labels, dataset.NumActivities), wloss, tcfg)

	var pooledTruth, pooledPred []int
	for _, fold := range split.Folds {
		xfFull, fidxFull, err := fold.WindowedMatrix(spec)
		if err != nil {
			return nil, err
		}
		xf, fidx := thinRows(xfFull, fidxFull, cfg.MaxEvalSamples)
		truth := fold.WindowedLabels(fidx, func(r *dataset.Record) int { return r.ActivityLabel() })
		pred := net.PredictClasses(scaler.Transform(xf))
		acc := 100 * EvaluateMultiClass(truth, pred, dataset.NumActivities).Accuracy
		res.WindowedPerFold = append(res.WindowedPerFold, acc)
		res.WindowedAvg += acc
		pooledTruth = append(pooledTruth, truth...)
		pooledPred = append(pooledPred, pred...)
	}
	res.WindowedAvg /= float64(len(split.Folds))
	res.WindowedMotionRec = EvaluateMultiClass(pooledTruth, pooledPred, dataset.NumActivities).Recall[dataset.ActivityMotion]
	return res, nil
}

// CountingResult is the occupant-counting extension outcome.
type CountingResult struct {
	Classes int
	// MLP softmax classifier over count classes.
	MLPExact []float64 // per-fold exact-match %, "how many people"
	MLPMAE   []float64 // per-fold MAE in persons
	// RF regression on the raw count.
	RFExact []float64
	RFMAE   []float64
	// Averages.
	MLPExactAvg, MLPMAEAvg float64
	RFExactAvg, RFMAEAvg   float64
}

// RunCounting estimates the number of simultaneous occupants (clamped at
// classes-1, default 5 ⇒ "4 or more") from CSI, with an MLP classifier and
// an RF regressor — the crowd-counting task of the paper's references
// [3], [12], [13] on our substrate.
func RunCounting(split *dataset.Split, classes int, cfg ExperimentConfig) (*CountingResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	if classes < 2 {
		classes = 5
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}

	x, _ := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	counts := train.CountLabels(classes)

	// MLP classifier over count classes.
	y := nn.OneHot(counts, classes)
	net := nn.NewMLP(dataset.FeatCSI.Dim(), cfg.Hidden, classes, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	net.Fit(xs, y, nn.SoftmaxCE{}, tcfg)

	// RF regressor on the clamped count.
	yreg := make([]float64, len(counts))
	for i, c := range counts {
		yreg[i] = float64(c)
	}
	fcfg := cfg.RF
	fcfg.Seed = cfg.Seed
	forest := rf.FitRegressor(x, yreg, fcfg)

	res := &CountingResult{Classes: classes}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, _ := ev.Matrix(dataset.FeatCSI)
		truth := ev.CountLabels(classes)

		mlpPred := net.PredictClasses(scaler.Transform(xf))
		exact, mae := countScores(truth, toFloats(mlpPred))
		res.MLPExact = append(res.MLPExact, exact)
		res.MLPMAE = append(res.MLPMAE, mae)

		raw := forest.PredictValues(xf)
		rounded := make([]float64, len(raw))
		for i, v := range raw {
			rounded[i] = math.Round(tensor.Clamp(v, 0, float64(classes-1)))
		}
		exact, mae = countScores(truth, rounded)
		res.RFExact = append(res.RFExact, exact)
		res.RFMAE = append(res.RFMAE, mae)
	}
	n := float64(len(split.Folds))
	for i := range res.MLPExact {
		res.MLPExactAvg += res.MLPExact[i]
		res.MLPMAEAvg += res.MLPMAE[i]
		res.RFExactAvg += res.RFExact[i]
		res.RFMAEAvg += res.RFMAE[i]
	}
	res.MLPExactAvg /= n
	res.MLPMAEAvg /= n
	res.RFExactAvg /= n
	res.RFMAEAvg /= n
	return res, nil
}

// thinRows stride-subsamples matrix rows (and the aligned index slice) to
// at most max rows (max<=0 keeps everything).
func thinRows(x *tensor.Matrix, idx []int, max int) (*tensor.Matrix, []int) {
	if max <= 0 || x.Rows <= max {
		return x, idx
	}
	stride := (x.Rows + max - 1) / max
	out := tensor.NewMatrix((x.Rows+stride-1)/stride, x.Cols)
	outIdx := make([]int, 0, out.Rows)
	r := 0
	for i := 0; i < x.Rows; i += stride {
		copy(out.Row(r), x.Row(i))
		outIdx = append(outIdx, idx[i])
		r++
	}
	return out, outIdx
}

func toFloats(v []int) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// countScores returns (exact-match %, MAE in persons).
func countScores(truth []int, pred []float64) (float64, float64) {
	if len(truth) == 0 {
		return 0, 0
	}
	exact := 0
	var mae float64
	for i, t := range truth {
		if int(pred[i]) == t {
			exact++
		}
		mae += math.Abs(float64(t) - pred[i])
	}
	n := float64(len(truth))
	return 100 * float64(exact) / n, mae / n
}
