package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
)

// TestRunRobustnessCleanReproducesTable4 is the acceptance contract for the
// sweep's clean end: with zero fault intensity, the streamed per-record
// evaluation must reproduce the seed Table IV MLP accuracies bit-identically
// — not approximately — for both the CSI-only column and the C+E column.
func TestRunRobustnessCleanReproducesTable4(t *testing.T) {
	_, split := testSplit(t)
	cfg := shrink(quickCfg())

	t4, err := RunTable4(split, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRobustness(split, cfg, RobustnessConfig{Intensities: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	var mlpIdx int = -1
	for mi, m := range Table4Models {
		if m == ModelMLP {
			mlpIdx = mi
		}
	}
	if mlpIdx < 0 {
		t.Fatal("MLP missing from Table4Models")
	}
	for fi := range split.Folds {
		if got, want := p.CSIOnly[fi], t4.Acc[fi][mlpIdx][dataset.FeatCSI]; got != want {
			t.Fatalf("fold %d CSI-only: clean sweep %v != Table IV %v", fi+1, got, want)
		}
		if got, want := p.Pipeline[fi], t4.Acc[fi][mlpIdx][dataset.FeatCSIEnv]; got != want {
			t.Fatalf("fold %d pipeline: clean sweep %v != Table IV %v", fi+1, got, want)
		}
	}
	if p.DropRate != 0 || p.Degradations != 0 || p.FallbackFrac != 0 {
		t.Fatalf("clean point reports faults: drop=%v degr=%d fallback=%v",
			p.DropRate, p.Degradations, p.FallbackFrac)
	}
}

// TestRunRobustnessDeterministicAcrossWorkerCounts: identical fault traces
// and results for any -workers value — every cell seeds its injector from
// its grid index alone.
func TestRunRobustnessDeterministicAcrossWorkerCounts(t *testing.T) {
	_, split := testSplit(t)
	base := shrink(quickCfg())
	rcfg := RobustnessConfig{Intensities: []float64{0, 1}, FullEnvOutage: true}

	var results []*RobustnessResult
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		res, err := RunRobustness(split, cfg, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	for ii := range a.Points {
		pa, pb := a.Points[ii], b.Points[ii]
		if pa.TraceHash != pb.TraceHash {
			t.Fatalf("intensity %v: fault trace hash differs across worker counts: %x vs %x",
				pa.Intensity, pa.TraceHash, pb.TraceHash)
		}
		for fi := range pa.CSIOnly {
			if pa.CSIOnly[fi] != pb.CSIOnly[fi] || pa.Pipeline[fi] != pb.Pipeline[fi] {
				t.Fatalf("intensity %v fold %d: accuracies differ across worker counts", pa.Intensity, fi+1)
			}
		}
		if pa.DropRate != pb.DropRate || pa.Degradations != pb.Degradations {
			t.Fatalf("intensity %v: stats differ across worker counts", pa.Intensity)
		}
	}
}

// TestRunRobustnessDegradesUnderOutage drives the pipeline with ~20% bursty
// frame loss plus a full env-sensor outage. The acceptance contract: the
// runtime must not panic, every fold's pipeline must fall back to the
// CSI-only model within one watchdog interval, and the clean point must be
// unaffected.
func TestRunRobustnessDegradesUnderOutage(t *testing.T) {
	_, split := testSplit(t)
	cfg := shrink(quickCfg())
	rcfg := RobustnessConfig{
		Intensities:    []float64{0, 1},
		FullEnvOutage:  true,
		WatchdogFrames: 10,
	}
	res, err := RunRobustness(split, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := res.Points[1]
	if faulty.DropRate < 0.10 || faulty.DropRate > 0.40 {
		t.Fatalf("drop rate %v outside the expected bursty-loss band", faulty.DropRate)
	}
	if faulty.Degradations < len(split.Folds) {
		t.Fatalf("only %d degradations across %d folds: pipeline did not fall back everywhere",
			faulty.Degradations, len(split.Folds))
	}
	// Env is dead from frame 0, so the watchdog must trip within its first
	// interval in every fold.
	if faulty.MaxFirstFallbackFrame < 0 || faulty.MaxFirstFallbackFrame > rcfg.WatchdogFrames {
		t.Fatalf("first fallback at frame %d, want within one watchdog interval (%d frames)",
			faulty.MaxFirstFallbackFrame, rcfg.WatchdogFrames)
	}
	if faulty.FallbackFrac < 0.9 {
		t.Fatalf("fallback served only %.0f%% of frames under a full env outage", 100*faulty.FallbackFrac)
	}
	// The fallback path must still produce usable accuracy: no worse than a
	// coin flip even with a fifth of the frames destroyed.
	if faulty.PipeAvg < 50 {
		t.Fatalf("pipeline accuracy collapsed to %.1f%% under faults", faulty.PipeAvg)
	}
	clean := res.Points[0]
	if clean.DropRate != 0 || clean.Degradations != 0 {
		t.Fatalf("clean point contaminated by sweep: drop=%v degr=%d", clean.DropRate, clean.Degradations)
	}
}

// TestRunRobustnessCustomProfile checks the profile override path: a loss-
// free, env-only profile must never drop frames yet still trigger fallback.
func TestRunRobustnessCustomProfile(t *testing.T) {
	_, split := testSplit(t)
	cfg := shrink(quickCfg())
	prof := fault.Config{EnvDead: true}
	res, err := RunRobustness(split, cfg, RobustnessConfig{
		Intensities:    []float64{1},
		Profile:        prof,
		WatchdogFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.DropRate != 0 {
		t.Fatalf("env-only profile dropped %.1f%% of frames", 100*p.DropRate)
	}
	if p.Degradations < len(split.Folds) {
		t.Fatalf("env-dead profile produced only %d degradations", p.Degradations)
	}
}
