package core

import (
	"testing"

	"repro/internal/dataset"
)

func ablationCfg() ExperimentConfig {
	cfg := quickCfg()
	cfg.NNTrain.Epochs = 4
	cfg.MaxTrainSamples = 800
	cfg.MaxEvalSamples = 200
	return cfg
}

func TestRunArchitectureAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunArchitectureAblation(split, ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dimension != "architecture" || len(res.Points) != 4 {
		t.Fatalf("sweep shape: %+v", res)
	}
	// Parameter counts must strictly increase across the sweep order.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Params <= res.Points[i-1].Params {
			t.Fatalf("params not increasing: %d then %d", res.Points[i-1].Params, res.Points[i].Params)
		}
	}
	for _, p := range res.Points {
		if p.Acc < 0 || p.Acc > 100 || len(p.PerFold) != 5 || p.TrainTime <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// The paper topology's parameter count is the documented one.
	if res.Points[2].Params != 8320+33024+32896+129 {
		t.Fatalf("paper topology params %d", res.Points[2].Params)
	}
}

func TestRunStandardizationAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunStandardizationAblation(split, ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatal("want 2 points")
	}
	if res.Points[0].Name != "standardised" || res.Points[1].Name != "raw amplitudes" {
		t.Fatalf("names %q %q", res.Points[0].Name, res.Points[1].Name)
	}
}

func TestRunTrainSizeAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunTrainSizeAblation(split, ablationCfg(), []int{100, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Name != "100" {
		t.Fatalf("sweep %+v", res)
	}
}

func TestRunEpochsAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunEpochsAblation(split, ablationCfg(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatal("sweep length")
	}
	// More epochs must not make training *faster*.
	if res.Points[1].TrainTime < res.Points[0].TrainTime/2 {
		t.Fatalf("epoch timing implausible: %v then %v", res.Points[0].TrainTime, res.Points[1].TrainTime)
	}
}

func TestTrainEvalMLPNoFolds(t *testing.T) {
	_, split := testSplit(t)
	bad := &dataset.Split{Train: split.Train}
	if _, err := trainEvalMLP(bad, ablationCfg(), nil, true); err == nil {
		t.Fatal("no folds must error")
	}
}

func TestRunModelFamilyAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunModelFamilyAblation(split, ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Name != "MLP" || res.Points[1].Name != "CNN (conv1d)" {
		t.Fatalf("family points %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.Acc < 0 || p.Acc > 100 || p.Params <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// The CNN is smaller than the paper MLP topology (the test config may
	// shrink the MLP itself, so compare against the documented count).
	if res.Points[1].Params >= 8320+33024+32896+129 {
		t.Fatalf("CNN params %d not below the paper MLP's", res.Points[1].Params)
	}
	bad := &dataset.Split{Train: split.Train}
	if _, err := RunModelFamilyAblation(bad, ablationCfg()); err == nil {
		t.Fatal("no folds must error")
	}
}

func TestRunPreprocessAblation(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunPreprocessAblation(split, ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dimension != "preprocessing" || len(res.Points) != 5 {
		t.Fatalf("sweep %+v", res)
	}
	if res.Points[4].Name != "pca-16" {
		t.Fatalf("pca arm missing: %q", res.Points[4].Name)
	}
	if res.Points[0].Name != "raw" {
		t.Fatalf("first arm must be raw, got %q", res.Points[0].Name)
	}
	for _, p := range res.Points {
		if p.Acc < 0 || p.Acc > 100 || len(p.PerFold) != 5 {
			t.Fatalf("bad point %+v", p)
		}
	}
}
