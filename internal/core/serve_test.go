package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// serveFixture trains a small detector and collects a bank of records.
func serveFixture(t *testing.T) (*Detector, []dataset.Record) {
	t.Helper()
	_, split := testSplit(t)
	det, err := TrainDetector(thin(split.Train, 600), quickDetectorCfg(dataset.FeatCSIEnv))
	if err != nil {
		t.Fatal(err)
	}
	recs := split.Folds[0].Records
	if len(recs) > 256 {
		recs = recs[:256]
	}
	return det, recs
}

// TestDetectorEngineBitIdentical: the engine-served prediction must equal
// the direct Detector.PredictRecord path bit for bit, for every record,
// under heavy concurrent submission and across worker counts (run with
// -race).
func TestDetectorEngineBitIdentical(t *testing.T) {
	det, recs := serveFixture(t)
	type ref struct {
		p     float64
		label int
	}
	want := make([]ref, len(recs))
	for i := range recs {
		p, l := det.PredictRecord(&recs[i])
		want[i] = ref{p, l}
	}
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		de, err := NewDetectorEngine(det, ServeConfig{
			Workers:  workers,
			MaxBatch: 32,
			MaxDelay: time.Millisecond,
			Observer: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		const feeds = 16
		var wg sync.WaitGroup
		for f := 0; f < feeds; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				for k := 0; k < 2*len(recs); k++ {
					i := (f*31 + k) % len(recs)
					p, l := de.PredictRecord(&recs[i])
					if p != want[i].p || l != want[i].label {
						t.Errorf("workers=%d rec=%d: engine (%v,%d) != direct (%v,%d)",
							workers, i, p, l, want[i].p, want[i].label)
						return
					}
				}
			}(f)
		}
		wg.Wait()
		de.Close()
		if wantN, got := int64(feeds*2*len(recs)), reg.Counter("infer_requests_total", "").Value(); got != wantN {
			t.Fatalf("workers=%d: engine served %d requests, want %d", workers, got, wantN)
		}
	}
}

// TestDetectorEngineValidation covers constructor errors and MaxDelay
// normalisation.
func TestDetectorEngineValidation(t *testing.T) {
	if _, err := NewDetectorEngine(nil, ServeConfig{}); err == nil {
		t.Fatal("expected error for nil detector")
	}
	if _, err := NewDetectorEngine(&Detector{}, ServeConfig{}); err == nil {
		t.Fatal("expected error for untrained detector")
	}
}

// TestDetectorEnginePredictRow checks the pre-standardised row entry point
// against PredictRecord.
func TestDetectorEnginePredictRow(t *testing.T) {
	det, recs := serveFixture(t)
	de, err := NewDetectorEngine(det, ServeConfig{Workers: 2, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer de.Close()
	if de.Detector() != det {
		t.Fatal("Detector accessor")
	}
	r := &recs[0]
	wantP, wantL := det.PredictRecord(r)
	row := dataset.FeatureRow(r, det.Features)
	det.Scaler.TransformRow(row)
	p, l := de.PredictRow(row)
	if p != wantP || l != wantL {
		t.Fatalf("PredictRow (%v,%d) != (%v,%d)", p, l, wantP, wantL)
	}
}
