package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linmodel"
	"repro/internal/nn"
)

func fuzzSeedBundle(t testing.TB) []byte {
	det := &Detector{
		Net:      nn.NewMLP(dataset.FeatEnv.Dim(), []int{4}, 1, rand.New(rand.NewSource(6))),
		Scaler:   &linmodel.Scaler{Mean: []float64{0, 0}, Std: []float64{1, 1}},
		Features: dataset.FeatEnv,
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadDetectorRejectsTruncation: every strict prefix of a valid bundle
// must fail with an error, never a panic.
func TestLoadDetectorRejectsTruncation(t *testing.T) {
	raw := fuzzSeedBundle(t)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadDetector(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(raw))
		}
	}
}

// TestLoadDetectorNeverPanicsOnBitFlips: corruption anywhere in the bundle —
// scaler, feature tag or embedded network — must never panic.
func TestLoadDetectorNeverPanicsOnBitFlips(t *testing.T) {
	raw := fuzzSeedBundle(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		_, _ = LoadDetector(bytes.NewReader(mut))
	}
}

// FuzzLoadDetector drives the bundle loader with arbitrary bytes: reject
// freely, never panic; accepted bundles must be internally consistent and
// re-save.
func FuzzLoadDetector(f *testing.F) {
	raw := fuzzSeedBundle(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		det, err := LoadDetector(bytes.NewReader(data))
		if err != nil {
			return
		}
		if det.Features.Dim() != det.Net.InputDim() || len(det.Scaler.Mean) != det.Net.InputDim() {
			t.Fatalf("accepted bundle is inconsistent: feat=%v scaler=%d net=%d",
				det.Features, len(det.Scaler.Mean), det.Net.InputDim())
		}
		var buf bytes.Buffer
		if err := det.Save(&buf); err != nil {
			t.Fatalf("loaded bundle failed to re-save: %v", err)
		}
	})
}
