package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestRunTable4ShapeAndSignal(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunTable4(split, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Acc) != 5 || len(res.Avg) != 3 {
		t.Fatalf("result shape: %d folds %d models", len(res.Acc), len(res.Avg))
	}
	for fi := range res.Acc {
		for mi := range res.Acc[fi] {
			for _, feat := range Table4Features {
				acc, ok := res.Acc[fi][mi][feat]
				if !ok {
					t.Fatalf("missing cell fold=%d model=%d feat=%v", fi, mi, feat)
				}
				if acc < 0 || acc > 100 {
					t.Fatalf("accuracy %g out of range", acc)
				}
			}
		}
	}
	// Core paper shape: the non-linear models on CSI beat chance solidly
	// on average. (Exact values vary with the short test trace.)
	if res.Avg[1][dataset.FeatCSI] < 60 || res.Avg[2][dataset.FeatCSI] < 60 {
		t.Fatalf("non-linear CSI averages too weak: RF=%g MLP=%g",
			res.Avg[1][dataset.FeatCSI], res.Avg[2][dataset.FeatCSI])
	}
}

func TestRunTable4NoFolds(t *testing.T) {
	_, split := testSplit(t)
	bad := &dataset.Split{Train: split.Train}
	if _, err := RunTable4(bad, quickCfg()); err == nil {
		t.Fatal("no folds must error")
	}
	if _, err := RunTable5(bad, quickCfg()); err == nil {
		t.Fatal("no folds must error (table 5)")
	}
}

func TestRunTable5ShapeAndNonLinearity(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunTable5(split, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Linear) != 5 || len(res.Neural) != 5 {
		t.Fatal("per-fold lengths")
	}
	for i := range res.Linear {
		for _, s := range []RegScores{res.Linear[i], res.Neural[i]} {
			if s.MAET < 0 || s.MAEH < 0 || s.MAPET < 0 || s.MAPEH < 0 {
				t.Fatalf("negative score at fold %d: %+v", i, s)
			}
		}
	}
	// Averages consistent with the per-fold values.
	if res.AvgLin.MAET <= 0 || res.AvgNN.MAET <= 0 {
		t.Fatal("averages must be positive")
	}
}

func TestRunFigure3EnvUnimportant(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunFigure3(split, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Importance) != 66 {
		t.Fatalf("importance width %d", len(res.Importance))
	}
	if res.CSIMass+res.EnvMass < 0.999 || res.CSIMass+res.EnvMass > 1.001 {
		t.Fatalf("masses must sum to 1: %g + %g", res.CSIMass, res.EnvMass)
	}
	// Paper's Figure 3 finding: CSI dominates the attribution. Env holds 2
	// of 66 features (3%); give it slack but require a clear CSI majority.
	if res.CSIMass < 0.6 {
		t.Fatalf("CSI mass %g too low for the Figure 3 claim", res.CSIMass)
	}
	if len(res.TopSubcarriers) == 0 {
		t.Fatal("no top subcarriers reported")
	}
}

func TestExplainDetectorRejectsWrongFeatures(t *testing.T) {
	_, split := testSplit(t)
	det, err := TrainDetector(thin(split.Train, 400), quickDetectorCfg(dataset.FeatCSI))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExplainDetector(det, split, 100); err == nil {
		t.Fatal("CSI-only detector must be rejected for Figure 3")
	}
}

func TestRunProfile(t *testing.T) {
	d, _ := testSplit(t)
	res, err := RunProfile(d, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// §V-A directions: temperature–humidity and temperature–occupancy
	// correlate positively in a heated winter office.
	if res.TempOcc < 0.05 {
		t.Fatalf("T–occ correlation %g too weak", res.TempOcc)
	}
	if res.TempHum < -0.2 {
		t.Fatalf("T–H correlation strongly negative: %g", res.TempHum)
	}
	// The CSI amplitude series is stationary (paper §V-A). The synthetic
	// T/H series carry the scripted fold-4/5 regime breaks, so their
	// verdicts are reported rather than asserted (see EXPERIMENTS.md).
	if !res.CSIStationary {
		t.Fatalf("CSI series must be stationary: %v", res.ADFCSI)
	}
	for _, r := range []stats.ADFResult{res.ADFTemp, res.ADFHum, res.ADFCSI} {
		if r.NObs == 0 || math.IsNaN(r.Statistic) {
			t.Fatalf("degenerate ADF result: %v", r)
		}
	}
	if _, err := RunProfile(&dataset.Dataset{}, 100); err == nil {
		t.Fatal("tiny dataset must error")
	}
}

func TestRunTimeOnly(t *testing.T) {
	_, split := testSplit(t)
	res, err := RunTimeOnly(split, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFold) != 5 {
		t.Fatal("per-fold length")
	}
	for _, acc := range res.PerFold {
		if acc < 0 || acc > 100 {
			t.Fatalf("accuracy %g", acc)
		}
	}
	if res.Avg <= 0 {
		t.Fatal("average must be positive")
	}
}
