package core

import (
	"testing"
)

// shrink tightens the quick config further: the determinism tests run the
// full Table IV grid twice, and they only need enough data for every code
// path to execute, not for the accuracies to be meaningful.
func shrink(cfg ExperimentConfig) ExperimentConfig {
	cfg.NNTrain.Epochs = 2
	cfg.MaxTrainSamples = 600
	cfg.MaxEvalSamples = 150
	cfg.RF.NumTrees = 5
	cfg.RF.MaxDepth = 8
	cfg.Logistic.Epochs = 4
	return cfg
}

// TestRunTable4DeterministicAcrossWorkerCounts is the contract the parallel
// experiment engine makes: the grid result is bit-identical — not merely
// close — for any worker count, because every task derives its inputs from
// its index and the config seed, never from scheduling order.
func TestRunTable4DeterministicAcrossWorkerCounts(t *testing.T) {
	_, split := testSplit(t)
	base := shrink(quickCfg())

	var results []*Table4Result
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		res, err := RunTable4(split, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		results = append(results, res)
	}

	ref := results[0]
	for ri, res := range results[1:] {
		if len(res.Acc) != len(ref.Acc) {
			t.Fatalf("fold count differs: %d vs %d", len(res.Acc), len(ref.Acc))
		}
		for fi := range ref.Acc {
			for mi := range ref.Acc[fi] {
				for _, feat := range Table4Features {
					a, b := ref.Acc[fi][mi][feat], res.Acc[fi][mi][feat]
					if a != b {
						t.Errorf("run %d: Acc[%d][%s][%v] = %v, sequential %v",
							ri+1, fi, Table4Models[mi], feat, b, a)
					}
				}
			}
		}
		for mi := range ref.Avg {
			for _, feat := range Table4Features {
				if a, b := ref.Avg[mi][feat], res.Avg[mi][feat]; a != b {
					t.Errorf("run %d: Avg[%s][%v] = %v, sequential %v",
						ri+1, Table4Models[mi], feat, b, a)
				}
			}
		}
	}
}

// TestRunTable5DeterministicAcrossWorkerCounts covers the regression grid
// the same way: both regressors and all fold scores must agree exactly.
func TestRunTable5DeterministicAcrossWorkerCounts(t *testing.T) {
	_, split := testSplit(t)
	base := shrink(quickCfg())

	var results []*Table5Result
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		res, err := RunTable5(split, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		results = append(results, res)
	}

	ref, res := results[0], results[1]
	if len(res.Linear) != len(ref.Linear) || len(res.Neural) != len(ref.Neural) {
		t.Fatalf("fold counts differ")
	}
	for fi := range ref.Linear {
		if ref.Linear[fi] != res.Linear[fi] {
			t.Errorf("Linear[%d]: %+v vs %+v", fi, res.Linear[fi], ref.Linear[fi])
		}
		if ref.Neural[fi] != res.Neural[fi] {
			t.Errorf("Neural[%d]: %+v vs %+v", fi, res.Neural[fi], ref.Neural[fi])
		}
	}
	if ref.AvgLin != res.AvgLin || ref.AvgNN != res.AvgNN {
		t.Errorf("averages differ: %+v/%+v vs %+v/%+v", res.AvgLin, res.AvgNN, ref.AvgLin, ref.AvgNN)
	}
}

// TestAblationDeterministicAcrossWorkerCounts spot-checks one sweep (the
// cheapest, standardisation) under different worker counts.
func TestAblationDeterministicAcrossWorkerCounts(t *testing.T) {
	_, split := testSplit(t)
	base := shrink(quickCfg())

	var results []*AblationResult
	for _, w := range []int{1, 3} {
		cfg := base
		cfg.Workers = w
		res, err := RunStandardizationAblation(split, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		results = append(results, res)
	}
	ref, res := results[0], results[1]
	if len(ref.Points) != len(res.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(ref.Points), len(res.Points))
	}
	for i := range ref.Points {
		if ref.Points[i].Name != res.Points[i].Name {
			t.Errorf("point %d name %q vs %q", i, res.Points[i].Name, ref.Points[i].Name)
		}
		if ref.Points[i].Acc != res.Points[i].Acc {
			t.Errorf("point %q: acc %v vs %v", ref.Points[i].Name, res.Points[i].Acc, ref.Points[i].Acc)
		}
		for fi := range ref.Points[i].PerFold {
			if ref.Points[i].PerFold[fi] != res.Points[i].PerFold[fi] {
				t.Errorf("point %q fold %d: %v vs %v", ref.Points[i].Name, fi,
					res.Points[i].PerFold[fi], ref.Points[i].PerFold[fi])
			}
		}
	}
}

// TestRunTable4QuickSanity guards the parallel rewrite's bookkeeping: every
// cell of the grid must be populated and within the accuracy range a real
// (if tiny) training run produces.
func TestRunTable4QuickSanity(t *testing.T) {
	_, split := testSplit(t)
	cfg := shrink(quickCfg())
	cfg.Workers = 2
	res, err := RunTable4(split, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Acc) != len(split.Folds) {
		t.Fatalf("got %d fold rows, want %d", len(res.Acc), len(split.Folds))
	}
	for fi := range res.Acc {
		for mi := range res.Acc[fi] {
			for _, feat := range Table4Features {
				acc, ok := res.Acc[fi][mi][feat]
				if !ok {
					t.Fatalf("missing Acc[%d][%s][%v]", fi, Table4Models[mi], feat)
				}
				if acc < 0 || acc > 100 {
					t.Errorf("Acc[%d][%s][%v] = %v out of range", fi, Table4Models[mi], feat, acc)
				}
			}
		}
	}
}
