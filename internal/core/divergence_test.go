package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/nn"
)

// TestDivergenceGoldenBounds is the acceptance sweep: on the standard
// simulated dataset, a trained detector's f32 and int8 paths must sit inside
// their default bounds — in particular ZERO decision flips. These are the
// golden numbers DESIGN.md §12 quotes; if this test starts failing, the
// reduced-precision pipeline has drifted, not the bounds.
func TestDivergenceGoldenBounds(t *testing.T) {
	det, recs := serveFixture(t)
	for _, p := range []string{"f32", "int8"} {
		res, err := RunDivergence(det, recs, DivergenceConfig{Precision: p})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("divergence: %s", res)
		if res.Samples != len(recs) {
			t.Fatalf("%s: swept %d samples, want %d", p, res.Samples, len(recs))
		}
		if res.Flips != 0 || res.FlipRate != 0 {
			t.Fatalf("%s: %d decision flips on the standard dataset, want 0", p, res.Flips)
		}
		if !res.Pass {
			t.Fatalf("%s: default bounds failed: %s", p, res)
		}
		if res.MaxAbsDelta < res.MeanAbsDelta {
			t.Fatalf("%s: max %g < mean %g", p, res.MaxAbsDelta, res.MeanAbsDelta)
		}
		wantAbs, wantFlip := DefaultDivergenceBounds(infer.Precision(p))
		if res.BoundAbsDelta != wantAbs || res.BoundFlipRate != wantFlip {
			t.Fatalf("%s: judged against (%g, %g), want defaults (%g, %g)",
				p, res.BoundAbsDelta, res.BoundFlipRate, wantAbs, wantFlip)
		}
	}
}

// TestDivergenceConfig covers validation, defaulting and bound overrides.
func TestDivergenceConfig(t *testing.T) {
	det, recs := serveFixture(t)
	if err := (DivergenceConfig{Precision: "f64"}).Validate(); err == nil {
		t.Fatal("Validate accepted f64 as a candidate")
	}
	if err := (DivergenceConfig{Precision: "f16"}).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown precision")
	}
	if err := (DivergenceConfig{}).Validate(); err != nil {
		t.Fatalf("empty config must be valid (defaults to f32): %v", err)
	}

	// Empty precision sweeps f32.
	res, err := RunDivergence(det, recs, DivergenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != infer.PrecisionF32 {
		t.Fatalf("empty precision swept %q, want f32", res.Precision)
	}
	if !strings.Contains(res.String(), "f32 vs f64") {
		t.Fatalf("report %q lacks the precision pair", res)
	}

	// An absurdly tight bound must fail the same sweep that passes by
	// default — Pass reflects the bounds, not the data.
	tight, err := RunDivergence(det, recs, DivergenceConfig{Precision: "int8", MaxAbsDelta: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Pass || tight.BoundAbsDelta != 1e-300 {
		t.Fatalf("tight bound: pass=%v bound=%g, want failing sweep at 1e-300", tight.Pass, tight.BoundAbsDelta)
	}
	// Negative bounds disable the checks entirely.
	loose, err := RunDivergence(det, recs, DivergenceConfig{Precision: "int8", MaxAbsDelta: -1, MaxFlipRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Pass {
		t.Fatal("disabled bounds must always pass")
	}

	// Error paths.
	if _, err := RunDivergence(nil, recs, DivergenceConfig{}); err == nil {
		t.Fatal("accepted nil detector")
	}
	if _, err := RunDivergence(det, nil, DivergenceConfig{}); err == nil {
		t.Fatal("accepted zero records")
	}
}

// TestDetectorEnginePrecision: a reduced-precision engine must score every
// record bit-identically to the direct reduced scorer (the per-precision
// determinism contract), and its divergence from the f64 engine must be the
// harness's — serving adds nothing.
func TestDetectorEnginePrecision(t *testing.T) {
	det, recs := serveFixture(t)
	if err := (ServeConfig{Precision: "f16"}).Validate(); err == nil {
		t.Fatal("ServeConfig accepted precision f16")
	}
	if _, err := NewDetectorEngine(det, ServeConfig{Precision: "f16"}); err == nil {
		t.Fatal("NewDetectorEngine accepted precision f16")
	}
	for _, p := range []string{"f32", "int8"} {
		de, err := NewDetectorEngine(det, ServeConfig{Workers: 2, MaxBatch: 16, Precision: p})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := infer.ParsePrecision(p); de.Precision() != got {
			t.Fatalf("engine precision %q, want %q", de.Precision(), p)
		}
		newScorer, err := infer.NetworkScorerAt(det.Net, infer.Precision(p))
		if err != nil {
			t.Fatal(err)
		}
		direct := newScorer()
		row := make([]float64, det.Features.Dim())
		for i := range recs {
			dataset.FeatureRowInto(row, &recs[i], det.Features)
			det.Scaler.TransformRow(row)
			want := direct.ScoreRow(row)
			got, _ := de.PredictRecord(&recs[i])
			if got != want {
				t.Fatalf("%s: record %d: engine %v != direct reduced path %v", p, i, got, want)
			}
		}
		de.Close()
	}
}

// TestRunFootprintAt: the deployment-size accounting switches to the int8
// artefact when quantisation is on and stays the float32 format otherwise.
func TestRunFootprintAt(t *testing.T) {
	det, _ := serveFixture(t)
	f32r, err := RunFootprintAt(det, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if f32r.SizeBytes != det.Net.SizeBytes(4) || f32r.Precision != "f64" {
		t.Fatalf("default footprint: size %d precision %q", f32r.SizeBytes, f32r.Precision)
	}
	i8r, err := RunFootprintAt(det, 1, "int8")
	if err != nil {
		t.Fatal(err)
	}
	ni, err := nn.NewNetworkI8(det.Net)
	if err != nil {
		t.Fatal(err)
	}
	if i8r.SizeBytes != ni.SizeBytes() || i8r.Precision != "int8" {
		t.Fatalf("int8 footprint: size %d precision %q, want %d/int8", i8r.SizeBytes, i8r.Precision, ni.SizeBytes())
	}
	if i8r.SizeBytes*3 >= f32r.SizeBytes*4 {
		t.Fatalf("int8 artefact %d not meaningfully smaller than f32 %d", i8r.SizeBytes, f32r.SizeBytes)
	}
	if _, err := RunFootprintAt(det, 1, "f16"); err == nil {
		t.Fatal("RunFootprintAt accepted f16")
	}
}
