package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/obs"
)

// ServeConfig parametrises a DetectorEngine. The zero value is a sensible
// deployment default: one worker per core, micro-batches up to 256 rows,
// and a 2 ms coalescing window — one tenth of the 50 ms frame period at the
// paper's 20 Hz, so batching never threatens the real-time budget.
type ServeConfig struct {
	// Workers is the scoring goroutine count (<= 0: one per core).
	Workers int
	// MaxBatch caps the coalesced micro-batch (default 256).
	MaxBatch int
	// MaxDelay is the straggler window for non-full batches. Negative
	// disables waiting entirely; 0 selects the 2 ms default.
	MaxDelay time.Duration
	// QueueDepth bounds the submission queue (default 4×MaxBatch).
	QueueDepth int
	// Precision selects the scorer arithmetic: "f64" (default; bit-identical
	// to Detector.PredictRecord), "f32" (float32 sparse-compaction arenas,
	// the fast serving path) or "int8" (quantised weights, smallest
	// footprint). Reduced precisions diverge boundedly from the reference —
	// bound them with RunDivergence before deploying (DESIGN.md §12).
	Precision string
	// Observer receives the engine's infer_* metrics (see infer.Config).
	// Nil disables observability.
	Observer obs.Observer
}

// Validate reports whether the engine parameters are usable. Workers uses
// <= 0 for "one per core" and a negative MaxDelay means "never wait", so
// only negative sizes fail. NewDetectorEngine calls it.
func (c ServeConfig) Validate() error {
	if c.MaxBatch < 0 {
		return fmt.Errorf("core: negative MaxBatch %d", c.MaxBatch)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("core: negative QueueDepth %d", c.QueueDepth)
	}
	if _, err := infer.ParsePrecision(c.Precision); err != nil {
		return err
	}
	return nil
}

// DetectorEngine serves one trained Detector to many concurrent callers
// through the batched inference engine (internal/infer): per-worker forward
// arenas, micro-batch coalescing, and a fused single-sample path. It
// implements stream.Predictor, so a fleet of stream Runtimes — one per
// sensor feed — can share a single model at full hardware throughput
// instead of each paying the allocating per-record path.
//
// At the default "f64" precision, predictions are bit-identical to
// Detector.PredictRecord for any worker count and any coalescing pattern
// (see TestDetectorEngineBitIdentical and DESIGN.md §9). At "f32"/"int8"
// the engine keeps the same internal determinism — a record's score is a
// pure function of the record and the model, regardless of batching — but
// diverges boundedly from the f64 reference; RunDivergence measures and
// bounds that divergence. Safe for concurrent use. Close releases the
// workers; the engine must not be used afterwards.
type DetectorEngine struct {
	det  *Detector
	eng  *infer.Engine
	rows sync.Pool // *[]float64, len = Features.Dim()
}

// NewDetectorEngine starts a serving engine over a trained detector.
func NewDetectorEngine(d *Detector, cfg ServeConfig) (*DetectorEngine, error) {
	if d == nil || d.Net == nil || d.Scaler == nil {
		return nil, fmt.Errorf("core: NewDetectorEngine needs a trained detector")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	} else if cfg.MaxDelay < 0 {
		cfg.MaxDelay = 0
	}
	prec, err := infer.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, err
	}
	newScorer, err := infer.NetworkScorerAt(d.Net, prec)
	if err != nil {
		return nil, err
	}
	eng, err := infer.New(infer.Config{
		NewScorer:  newScorer,
		Precision:  prec,
		Workers:    cfg.Workers,
		MaxBatch:   cfg.MaxBatch,
		MaxDelay:   cfg.MaxDelay,
		QueueDepth: cfg.QueueDepth,
		Observer:   cfg.Observer,
	})
	if err != nil {
		return nil, err
	}
	de := &DetectorEngine{det: d, eng: eng}
	dim := d.Features.Dim()
	de.rows.New = func() any {
		s := make([]float64, dim)
		return &s
	}
	return de, nil
}

// Detector returns the model being served.
func (de *DetectorEngine) Detector() *Detector { return de.det }

// Precision returns the scorer precision the engine was built with.
func (de *DetectorEngine) Precision() infer.Precision { return de.eng.Precision() }

// PredictRecord classifies one record through the engine, returning
// P(occupied) and the label — the same contract as Detector.PredictRecord,
// bit for bit, but allocation-free and batched across concurrent callers.
// It implements stream.Predictor.
func (de *DetectorEngine) PredictRecord(r *dataset.Record) (float64, int) {
	bp := de.rows.Get().(*[]float64)
	row := *bp
	dataset.FeatureRowInto(row, r, de.det.Features)
	de.det.Scaler.TransformRow(row)
	p, label := de.eng.PredictLabel(row)
	de.rows.Put(bp)
	return p, label
}

// PredictRow scores an already-extracted, already-standardised feature row.
func (de *DetectorEngine) PredictRow(row []float64) (float64, int) {
	return de.eng.PredictLabel(row)
}

// Close drains and stops the engine workers. No calls may be in flight or
// follow.
func (de *DetectorEngine) Close() { de.eng.Close() }
