package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// AblationPoint is one configuration in an ablation sweep with its outcome.
type AblationPoint struct {
	Name string
	// Acc is the mean accuracy (%) over the test folds.
	Acc float64
	// PerFold holds the per-fold accuracies (%).
	PerFold []float64
	// Params is the trained model's parameter count (0 for non-NN points).
	Params int
	// TrainTime is the wall-clock training duration.
	TrainTime time.Duration
}

// AblationResult is a named sweep.
type AblationResult struct {
	Dimension string
	Points    []AblationPoint
}

// runPoints evaluates a sweep's points concurrently on the shared pool,
// preserving the sweep order in the result. Each point trains its own
// models from the config seed, so the sweep is bit-identical for any
// worker count. The first error (in sweep order) aborts the result.
func runPoints(dimension string, workers, n int, eval func(i int) (AblationPoint, error)) (*AblationResult, error) {
	type slot struct {
		pt  AblationPoint
		err error
	}
	out := parallel.Map(workers, n, func(i int) slot {
		pt, err := eval(i)
		return slot{pt: pt, err: err}
	})
	res := &AblationResult{Dimension: dimension}
	for _, s := range out {
		if s.err != nil {
			return nil, s.err
		}
		res.Points = append(res.Points, s.pt)
	}
	return res, nil
}

// RunArchitectureAblation sweeps MLP hidden topologies on the CSI feature
// set, quantifying the paper's implicit design choice of 128-256-128
// ("size parameters chosen ... with special care in keeping the number of
// parameters bounded", §IV-B).
func RunArchitectureAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	topologies := []struct {
		name   string
		hidden []int
	}{
		{"16", []int{16}},
		{"64-32", []int{64, 32}},
		{"128-256-128 (paper)", []int{128, 256, 128}},
		{"256-256-256", []int{256, 256, 256}},
	}
	return runPoints("architecture", parallel.Workers(cfg.Workers), len(topologies), func(i int) (AblationPoint, error) {
		tp := topologies[i]
		pt, err := trainEvalMLP(split, cfg, tp.hidden, true)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("core: architecture %s: %w", tp.name, err)
		}
		pt.Name = tp.name
		return pt, nil
	})
}

// RunStandardizationAblation compares training with and without feature
// standardisation — the preprocessing the paper leaves implicit but every
// pipeline on raw-amplitude CSI depends on.
func RunStandardizationAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	variants := []struct {
		name string
		std  bool
	}{{"standardised", true}, {"raw amplitudes", false}}
	return runPoints("standardisation", parallel.Workers(cfg.Workers), len(variants), func(i int) (AblationPoint, error) {
		pt, err := trainEvalMLP(split, cfg, cfg.Hidden, variants[i].std)
		if err != nil {
			return AblationPoint{}, err
		}
		pt.Name = variants[i].name
		return pt, nil
	})
}

// RunTrainSizeAblation sweeps the training-set size (via thinning),
// quantifying how much of the 74-hour capture the detector actually needs.
func RunTrainSizeAblation(split *dataset.Split, cfg ExperimentConfig, sizes []int) (*AblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 2000, 8000, 32000}
	}
	return runPoints("training samples", parallel.Workers(cfg.Workers), len(sizes), func(i int) (AblationPoint, error) {
		c := cfg
		c.MaxTrainSamples = sizes[i]
		pt, err := trainEvalMLP(split, c, cfg.Hidden, true)
		if err != nil {
			return AblationPoint{}, err
		}
		pt.Name = fmt.Sprintf("%d", sizes[i])
		return pt, nil
	})
}

// RunEpochsAblation sweeps training epochs around the paper's 10.
func RunEpochsAblation(split *dataset.Split, cfg ExperimentConfig, epochs []int) (*AblationResult, error) {
	if len(epochs) == 0 {
		epochs = []int{1, 3, 10, 30}
	}
	return runPoints("epochs", parallel.Workers(cfg.Workers), len(epochs), func(i int) (AblationPoint, error) {
		c := cfg
		c.NNTrain.Epochs = epochs[i]
		pt, err := trainEvalMLP(split, c, cfg.Hidden, true)
		if err != nil {
			return AblationPoint{}, err
		}
		pt.Name = fmt.Sprintf("%d", epochs[i])
		return pt, nil
	})
}

// RunPreprocessAblation tests the paper's §I claim that its model needs no
// "computationally-demanding pre-processing pipelines": the same MLP is
// trained on raw amplitudes and on three classical denoising front-ends
// (moving average, Hampel, Savitzky–Golay), each applied per subcarrier
// over time to both training and evaluation folds.
func RunPreprocessAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	sg, err := filter.NewSavitzkyGolay(5, 2)
	if err != nil {
		return nil, err
	}
	pipelines := []filter.Filter{
		filter.Identity{},
		filter.MovingAverage{R: 3},
		filter.Hampel{R: 5, NSigma: 3},
		sg,
	}
	// One point per denoising front-end, plus a final PCA front-end point
	// (project the 64 amplitudes to 16 principal components — the common
	// dimensionality-reduction step — before the same MLP).
	return runPoints("preprocessing", parallel.Workers(cfg.Workers), len(pipelines)+1, func(i int) (AblationPoint, error) {
		if i == len(pipelines) {
			return trainEvalPCA(split, cfg, 16)
		}
		f := pipelines[i]
		apply := func(d *dataset.Dataset) *dataset.Dataset {
			if _, ok := f.(filter.Identity); ok {
				return d
			}
			return d.MapCSIColumns(func(_ int, s []float64) []float64 { return f.Apply(s) })
		}
		filtered := &dataset.Split{Train: apply(split.Train)}
		for _, fold := range split.Folds {
			filtered.Folds = append(filtered.Folds, apply(fold))
		}
		pt, err := trainEvalMLP(filtered, cfg, cfg.Hidden, true)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("core: preprocessing %s: %w", f.Name(), err)
		}
		pt.Name = f.Name()
		return pt, nil
	})
}

// trainEvalPCA trains the MLP on a PCA-k projection of the CSI features.
func trainEvalPCA(split *dataset.Split, cfg ExperimentConfig, k int) (AblationPoint, error) {
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	pca, err := linmodel.FitPCA(xs, k, cfg.Seed)
	if err != nil {
		return AblationPoint{}, fmt.Errorf("core: PCA front-end: %w", err)
	}
	xp := pca.Transform(xs)
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = PaperHidden
	}
	net := nn.NewMLP(k, hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xp, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Name: fmt.Sprintf("pca-%d", k), Params: net.NumParams(), TrainTime: time.Since(t0)}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		pred := net.PredictBinary(pca.Transform(scaler.Transform(xf)))
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}

// RunModelFamilyAblation compares the paper's MLP against a small 1-D CNN
// over the subcarrier axis (the other common model family in CSI sensing):
// same training budget, same CSI features.
func RunModelFamilyAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	return runPoints("model family", parallel.Workers(cfg.Workers), 2, func(i int) (AblationPoint, error) {
		if i == 0 {
			pt, err := trainEvalMLP(split, cfg, cfg.Hidden, true)
			if err != nil {
				return AblationPoint{}, err
			}
			pt.Name = "MLP"
			return pt, nil
		}
		pt, err := trainEvalNet(split, cfg, func(rng *rand.Rand) *nn.Network {
			return nn.NewCNN(dataset.FeatCSI.Dim(), 1, rng)
		})
		if err != nil {
			return AblationPoint{}, err
		}
		pt.Name = "CNN (conv1d)"
		return pt, nil
	})
}

// trainEvalNet trains an arbitrary network constructor on standardised CSI
// features and evaluates the fold-average accuracy.
func trainEvalNet(split *dataset.Split, cfg ExperimentConfig, build func(*rand.Rand) *nn.Network) (AblationPoint, error) {
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	net := build(rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xs, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Params: net.NumParams(), TrainTime: time.Since(t0)}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		pred := net.PredictBinary(scaler.Transform(xf))
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}

// trainEvalMLP trains a CSI MLP under the given knobs and evaluates the
// fold-average accuracy.
func trainEvalMLP(split *dataset.Split, cfg ExperimentConfig, hidden []int, standardize bool) (AblationPoint, error) {
	if len(split.Folds) == 0 {
		return AblationPoint{}, fmt.Errorf("core: split has no test folds")
	}
	if len(hidden) == 0 {
		hidden = PaperHidden
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	var scaler *linmodel.Scaler
	xs := x
	if standardize {
		scaler = linmodel.FitScaler(x)
		xs = scaler.Transform(x)
	}
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	net := nn.NewMLP(dataset.FeatCSI.Dim(), hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xs, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Params: net.NumParams(), TrainTime: time.Since(t0)}

	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		if standardize {
			xf = scaler.Transform(xf)
		}
		pred := net.PredictBinary(xf)
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}
