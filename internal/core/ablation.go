package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// AblationPoint is one configuration in an ablation sweep with its outcome.
type AblationPoint struct {
	Name string
	// Acc is the mean accuracy (%) over the test folds.
	Acc float64
	// PerFold holds the per-fold accuracies (%).
	PerFold []float64
	// Params is the trained model's parameter count (0 for non-NN points).
	Params int
	// TrainTime is the wall-clock training duration.
	TrainTime time.Duration
}

// AblationResult is a named sweep.
type AblationResult struct {
	Dimension string
	Points    []AblationPoint
}

// RunArchitectureAblation sweeps MLP hidden topologies on the CSI feature
// set, quantifying the paper's implicit design choice of 128-256-128
// ("size parameters chosen ... with special care in keeping the number of
// parameters bounded", §IV-B).
func RunArchitectureAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	topologies := []struct {
		name   string
		hidden []int
	}{
		{"16", []int{16}},
		{"64-32", []int{64, 32}},
		{"128-256-128 (paper)", []int{128, 256, 128}},
		{"256-256-256", []int{256, 256, 256}},
	}
	res := &AblationResult{Dimension: "architecture"}
	for _, tp := range topologies {
		pt, err := trainEvalMLP(split, cfg, tp.hidden, true)
		if err != nil {
			return nil, fmt.Errorf("core: architecture %s: %w", tp.name, err)
		}
		pt.Name = tp.name
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunStandardizationAblation compares training with and without feature
// standardisation — the preprocessing the paper leaves implicit but every
// pipeline on raw-amplitude CSI depends on.
func RunStandardizationAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	res := &AblationResult{Dimension: "standardisation"}
	for _, std := range []bool{true, false} {
		pt, err := trainEvalMLP(split, cfg, cfg.Hidden, std)
		if err != nil {
			return nil, err
		}
		if std {
			pt.Name = "standardised"
		} else {
			pt.Name = "raw amplitudes"
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunTrainSizeAblation sweeps the training-set size (via thinning),
// quantifying how much of the 74-hour capture the detector actually needs.
func RunTrainSizeAblation(split *dataset.Split, cfg ExperimentConfig, sizes []int) (*AblationResult, error) {
	if len(sizes) == 0 {
		sizes = []int{500, 2000, 8000, 32000}
	}
	res := &AblationResult{Dimension: "training samples"}
	for _, n := range sizes {
		c := cfg
		c.MaxTrainSamples = n
		pt, err := trainEvalMLP(split, c, cfg.Hidden, true)
		if err != nil {
			return nil, err
		}
		pt.Name = fmt.Sprintf("%d", n)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunEpochsAblation sweeps training epochs around the paper's 10.
func RunEpochsAblation(split *dataset.Split, cfg ExperimentConfig, epochs []int) (*AblationResult, error) {
	if len(epochs) == 0 {
		epochs = []int{1, 3, 10, 30}
	}
	res := &AblationResult{Dimension: "epochs"}
	for _, e := range epochs {
		c := cfg
		c.NNTrain.Epochs = e
		pt, err := trainEvalMLP(split, c, cfg.Hidden, true)
		if err != nil {
			return nil, err
		}
		pt.Name = fmt.Sprintf("%d", e)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunPreprocessAblation tests the paper's §I claim that its model needs no
// "computationally-demanding pre-processing pipelines": the same MLP is
// trained on raw amplitudes and on three classical denoising front-ends
// (moving average, Hampel, Savitzky–Golay), each applied per subcarrier
// over time to both training and evaluation folds.
func RunPreprocessAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	sg, err := filter.NewSavitzkyGolay(5, 2)
	if err != nil {
		return nil, err
	}
	pipelines := []filter.Filter{
		filter.Identity{},
		filter.MovingAverage{R: 3},
		filter.Hampel{R: 5, NSigma: 3},
		sg,
	}
	res := &AblationResult{Dimension: "preprocessing"}
	for _, f := range pipelines {
		apply := func(d *dataset.Dataset) *dataset.Dataset {
			if _, ok := f.(filter.Identity); ok {
				return d
			}
			return d.MapCSIColumns(func(_ int, s []float64) []float64 { return f.Apply(s) })
		}
		filtered := &dataset.Split{Train: apply(split.Train)}
		for _, fold := range split.Folds {
			filtered.Folds = append(filtered.Folds, apply(fold))
		}
		pt, err := trainEvalMLP(filtered, cfg, cfg.Hidden, true)
		if err != nil {
			return nil, fmt.Errorf("core: preprocessing %s: %w", f.Name(), err)
		}
		pt.Name = f.Name()
		res.Points = append(res.Points, pt)
	}

	// PCA front-end: project the 64 amplitudes to 16 principal components
	// (the common dimensionality-reduction step) before the same MLP.
	pcaPt, err := trainEvalPCA(split, cfg, 16)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, pcaPt)
	return res, nil
}

// trainEvalPCA trains the MLP on a PCA-k projection of the CSI features.
func trainEvalPCA(split *dataset.Split, cfg ExperimentConfig, k int) (AblationPoint, error) {
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	pca, err := linmodel.FitPCA(xs, k, cfg.Seed)
	if err != nil {
		return AblationPoint{}, fmt.Errorf("core: PCA front-end: %w", err)
	}
	xp := pca.Transform(xs)
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = PaperHidden
	}
	net := nn.NewMLP(k, hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xp, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Name: fmt.Sprintf("pca-%d", k), Params: net.NumParams(), TrainTime: time.Since(t0)}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		pred := net.PredictBinary(pca.Transform(scaler.Transform(xf)))
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}

// RunModelFamilyAblation compares the paper's MLP against a small 1-D CNN
// over the subcarrier axis (the other common model family in CSI sensing):
// same training budget, same CSI features.
func RunModelFamilyAblation(split *dataset.Split, cfg ExperimentConfig) (*AblationResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	res := &AblationResult{Dimension: "model family"}

	mlp, err := trainEvalMLP(split, cfg, cfg.Hidden, true)
	if err != nil {
		return nil, err
	}
	mlp.Name = "MLP"
	res.Points = append(res.Points, mlp)

	cnn, err := trainEvalNet(split, cfg, func(rng *rand.Rand) *nn.Network {
		return nn.NewCNN(dataset.FeatCSI.Dim(), 1, rng)
	})
	if err != nil {
		return nil, err
	}
	cnn.Name = "CNN (conv1d)"
	res.Points = append(res.Points, cnn)
	return res, nil
}

// trainEvalNet trains an arbitrary network constructor on standardised CSI
// features and evaluates the fold-average accuracy.
func trainEvalNet(split *dataset.Split, cfg ExperimentConfig, build func(*rand.Rand) *nn.Network) (AblationPoint, error) {
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	net := build(rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xs, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Params: net.NumParams(), TrainTime: time.Since(t0)}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		pred := net.PredictBinary(scaler.Transform(xf))
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}

// trainEvalMLP trains a CSI MLP under the given knobs and evaluates the
// fold-average accuracy.
func trainEvalMLP(split *dataset.Split, cfg ExperimentConfig, hidden []int, standardize bool) (AblationPoint, error) {
	if len(split.Folds) == 0 {
		return AblationPoint{}, fmt.Errorf("core: split has no test folds")
	}
	if len(hidden) == 0 {
		hidden = PaperHidden
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, yi := train.Matrix(dataset.FeatCSI)
	var scaler *linmodel.Scaler
	xs := x
	if standardize {
		scaler = linmodel.FitScaler(x)
		xs = scaler.Transform(x)
	}
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	net := nn.NewMLP(dataset.FeatCSI.Dim(), hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
	tcfg := cfg.NNTrain
	tcfg.Seed = cfg.Seed
	t0 := time.Now()
	net.Fit(xs, y, nn.BCEWithLogits{}, tcfg)
	pt := AblationPoint{Params: net.NumParams(), TrainTime: time.Since(t0)}

	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatCSI)
		if standardize {
			xf = scaler.Transform(xf)
		}
		pred := net.PredictBinary(xf)
		correct := 0
		for i := range yf {
			if pred[i] == yf[i] {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(yf))
		pt.PerFold = append(pt.PerFold, acc)
		pt.Acc += acc
	}
	pt.Acc /= float64(len(split.Folds))
	return pt, nil
}
