package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/framelog"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ShadowTrainConfig parameterizes ShadowTrain: retraining a candidate
// detector from retained frame-log segments while the active model keeps
// serving.
type ShadowTrainConfig struct {
	// LogDir is the framelog root the serving tier appends to
	// (DurabilityConfig.Dir).
	LogDir string
	// Feeds selects which feeds' logs to train on; empty means every feed
	// under LogDir.
	Feeds []string
	// MaxFrames caps the total training frames across feeds (0: no cap).
	// The cap is applied in feed order, so it is deterministic for a
	// fixed log state.
	MaxFrames int
	// Detector configures the candidate: topology, training
	// hyper-parameters and init seed. Zero-valued fields take
	// DefaultDetectorConfig defaults. The feature set is always the
	// active detector's — the install gate requires candidates to match
	// the serving features, so Detector.Features is ignored.
	Detector DetectorConfig
	// CheckpointPath is where training checkpoints land; an existing
	// checkpoint resumes with the bit-identical shuffle replay
	// nn.FitCheckpointed guarantees. Required — shadow training exists to
	// survive interruption.
	CheckpointPath string
	// CheckpointEvery is the epoch interval between checkpoints
	// (default 1).
	CheckpointEvery int
}

// Validate reports whether the configuration is trainable.
func (c ShadowTrainConfig) Validate() error {
	if c.LogDir == "" {
		return fmt.Errorf("core: ShadowTrainConfig.LogDir is required")
	}
	if c.CheckpointPath == "" {
		return fmt.Errorf("core: ShadowTrainConfig.CheckpointPath is required")
	}
	if c.MaxFrames < 0 {
		return fmt.Errorf("core: negative MaxFrames %d", c.MaxFrames)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: negative CheckpointEvery %d", c.CheckpointEvery)
	}
	if err := validHidden(c.Detector.Hidden); err != nil {
		return err
	}
	return nil
}

// errFramesCapped aborts a replay once MaxFrames is reached; it never
// escapes ShadowTrain.
var errFramesCapped = errors.New("core: frame cap reached")

// ShadowTrain trains a candidate detector on the frames retained in a
// frame log, pseudo-labeled by the active detector. The logs carry no
// occupancy ground truth — they record what arrived on the wire — so the
// active model's decisions stand in as labels: the candidate distills the
// incumbent on exactly the traffic the incumbent has been serving, which
// is the retraining substrate drift recovery needs (swap in real labels
// here when a deployment has them). Dropped frames (no CSI) are skipped.
//
// The function is deterministic for a fixed log state and configuration:
// replay order is append order, the init RNG is seeded, and training goes
// through nn.FitCheckpointed — interrupting and re-running with the same
// CheckpointPath resumes into the bit-identical weight trajectory.
// Returns the candidate and the number of frames it trained on.
func ShadowTrain(active *Detector, cfg ShadowTrainConfig) (*Detector, int, error) {
	if active == nil {
		return nil, 0, fmt.Errorf("core: nil active detector")
	}
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	dc := cfg.Detector
	dc.Features = active.Features
	if len(dc.Hidden) == 0 {
		dc.Hidden = append([]int(nil), PaperHidden...)
	}
	if dc.Train.Epochs == 0 {
		dc.Train = nn.DefaultTrainConfig()
	}
	if dc.Seed == 0 {
		dc.Seed = 1
	}
	if err := (DetectorConfig{Features: dc.Features, Hidden: dc.Hidden, Train: dc.Train, Seed: dc.Seed}).Validate(); err != nil {
		return nil, 0, err
	}

	feeds := cfg.Feeds
	if len(feeds) == 0 {
		var err error
		feeds, err = framelog.ListFeeds(cfg.LogDir)
		if err != nil {
			return nil, 0, err
		}
	}

	var recs []dataset.Record
	for _, feed := range feeds {
		if cfg.MaxFrames > 0 && len(recs) >= cfg.MaxFrames {
			break
		}
		_, err := framelog.Replay(cfg.LogDir, feed, -1, func(fr fault.Frame) error {
			if fr.Dropped {
				return nil
			}
			recs = append(recs, fr.Rec)
			if cfg.MaxFrames > 0 && len(recs) >= cfg.MaxFrames {
				return errFramesCapped
			}
			return nil
		})
		if err != nil && !errors.Is(err, errFramesCapped) {
			return nil, 0, fmt.Errorf("core: replaying %s: %w", feed, err)
		}
	}
	if len(recs) == 0 {
		return nil, 0, fmt.Errorf("core: no trainable frames under %s", cfg.LogDir)
	}

	dim := dc.Features.Dim()
	x := tensor.NewMatrix(len(recs), dim)
	y := tensor.NewMatrix(len(recs), 1)
	for i := range recs {
		dataset.FeatureRowInto(x.Row(i), &recs[i], dc.Features)
		_, label := active.PredictRecord(&recs[i])
		y.Set(i, 0, float64(label))
	}

	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	rng := rand.New(rand.NewSource(dc.Seed))
	net := nn.NewMLP(dim, dc.Hidden, 1, rng)
	if _, err := net.FitCheckpointed(xs, y, nn.BCEWithLogits{}, dc.Train, cfg.CheckpointPath, cfg.CheckpointEvery); err != nil {
		return nil, 0, err
	}
	return &Detector{Net: net, Scaler: scaler, Features: dc.Features}, len(recs), nil
}
