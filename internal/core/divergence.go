package core

import (
	"fmt"

	"repro/internal/cpukit"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/nn"
)

// Divergence harness (DESIGN.md §12): before a reduced-precision scorer
// serves traffic, sweep it against the float64 reference over a simulated
// feed and bound how far the probabilities drift and — the number that
// actually matters for an occupancy detector — how often the 0.5-threshold
// decision flips. The f64 path stays the bit-exact reproduction reference;
// f32/int8 are admitted only inside these bounds.

// DivergenceConfig parametrises RunDivergence. The zero value of the bound
// fields selects per-precision defaults (DefaultDivergenceBounds).
type DivergenceConfig struct {
	// Precision is the reduced path under test: "f32" or "int8" ("" selects
	// "f32"; "f64" is rejected — it is the reference, not a candidate).
	Precision string
	// MaxAbsDelta fails the sweep when any |P_reduced − P_f64| exceeds it
	// (0: the precision's default; negative: no probability bound).
	MaxAbsDelta float64
	// MaxFlipRate fails the sweep when the fraction of records whose
	// decision flips exceeds it. 0 is a real bound — no flips allowed —
	// and the default for both precisions; negative disables the check.
	MaxFlipRate float64
}

// DefaultDivergenceBounds returns the default (MaxAbsDelta, MaxFlipRate)
// for a precision: f32 must stay within 1e-3 probability of the reference
// (measured drift on the standard simulated day is ~1e-6; the slack covers
// pathologically ill-conditioned models), int8 within 0.15 (8-bit weights
// genuinely move saturated probabilities), and neither may flip a single
// decision.
func DefaultDivergenceBounds(p infer.Precision) (maxAbsDelta, maxFlipRate float64) {
	if p == infer.PrecisionI8 {
		return 0.15, 0
	}
	return 1e-3, 0
}

// Validate reports whether the configuration is runnable.
func (c DivergenceConfig) Validate() error {
	p, err := infer.ParsePrecision(c.Precision)
	if err != nil {
		return err
	}
	if c.Precision != "" && p == infer.PrecisionF64 {
		return fmt.Errorf("core: divergence needs a reduced precision (f32 or int8), not the f64 reference")
	}
	return nil
}

// DivergenceResult reports one sweep of a reduced-precision scorer against
// the float64 reference.
type DivergenceResult struct {
	Precision infer.Precision
	// Kernel names the cpukit kernel ("generic" or "avx2") the candidate ran
	// on. The bounds admit a (precision, kernel) pair, not a precision alone:
	// the AVX2 kernels regroup float accumulation, so their drift must be
	// re-measured, and this field keeps the report unambiguous about which
	// arithmetic was actually swept.
	Kernel  string
	Samples int
	// MaxAbsDelta / MeanAbsDelta summarise |P_reduced − P_f64|.
	MaxAbsDelta  float64
	MeanAbsDelta float64
	// Flips counts records whose 0.5-threshold decision changed; FlipRate
	// is Flips/Samples.
	Flips    int
	FlipRate float64
	// Bounds the sweep was judged against, after defaulting.
	BoundAbsDelta float64
	BoundFlipRate float64
	// Pass is true when every configured bound held.
	Pass bool
}

// String renders the one-line report the CLIs print.
func (r *DivergenceResult) String() string {
	verdict := "FAIL"
	if r.Pass {
		verdict = "ok"
	}
	return fmt.Sprintf("%s vs f64 (%s kernel): %d samples, max |Δp| %.3g (bound %.3g), mean %.3g, %d decision flips (rate %.3g, bound %.3g) — %s",
		r.Precision, r.Kernel, r.Samples, r.MaxAbsDelta, r.BoundAbsDelta, r.MeanAbsDelta,
		r.Flips, r.FlipRate, r.BoundFlipRate, verdict)
}

// RunDivergence sweeps every record through the detector's float64
// reference path and the reduced-precision arena, comparing probabilities
// and decisions. The comparison shares one feature row per record —
// extraction and standardisation are identical on both sides, so the
// measured divergence is purely the forward pass arithmetic.
func RunDivergence(det *Detector, recs []dataset.Record, cfg DivergenceConfig) (*DivergenceResult, error) {
	if det == nil || det.Net == nil || det.Scaler == nil {
		return nil, fmt.Errorf("core: RunDivergence needs a trained detector")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: RunDivergence on zero records")
	}
	prec, _ := infer.ParsePrecision(cfg.Precision)
	if cfg.Precision == "" {
		prec = infer.PrecisionF32
	}

	// Reference: the float64 arena, bit-identical to Detector.PredictRecord
	// (TestArenaBitIdentical). Candidate: one reduced-precision scorer of
	// the same kind the serving engine builds per worker.
	ref := nn.NewArena(det.Net)
	newScorer, err := infer.NetworkScorerAt(det.Net, prec)
	if err != nil {
		return nil, err
	}
	reduced := newScorer()

	res := &DivergenceResult{Precision: prec, Kernel: cpukit.Active().String(), Samples: len(recs)}
	res.BoundAbsDelta, res.BoundFlipRate = DefaultDivergenceBounds(prec)
	if cfg.MaxAbsDelta != 0 {
		res.BoundAbsDelta = cfg.MaxAbsDelta
	}
	if cfg.MaxFlipRate != 0 {
		res.BoundFlipRate = cfg.MaxFlipRate
	}

	row := make([]float64, det.Features.Dim())
	sum := 0.0
	for i := range recs {
		dataset.FeatureRowInto(row, &recs[i], det.Features)
		det.Scaler.TransformRow(row)
		p64 := ref.PredictProb1(row)
		pr := reduced.ScoreRow(row)
		d := pr - p64
		if d < 0 {
			d = -d
		}
		sum += d
		if d > res.MaxAbsDelta {
			res.MaxAbsDelta = d
		}
		if (p64 >= 0.5) != (pr >= 0.5) {
			res.Flips++
		}
	}
	res.MeanAbsDelta = sum / float64(res.Samples)
	res.FlipRate = float64(res.Flips) / float64(res.Samples)
	res.Pass = true
	if res.BoundAbsDelta >= 0 && res.MaxAbsDelta > res.BoundAbsDelta {
		res.Pass = false
	}
	if res.BoundFlipRate >= 0 && res.FlipRate > res.BoundFlipRate {
		res.Pass = false
	}
	return res, nil
}
