// Package core is the public face of the reproduction: the occupancy
// Detector (the paper's lightweight MLP of §IV-B wrapped with feature
// extraction and standardisation), the EnvRegressor that estimates
// temperature and humidity from CSI (§V-D), model persistence, and the
// experiment runners that regenerate every table and figure of the
// evaluation section (internal/core/experiments.go).
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// PaperHidden is the hidden topology of §IV-B: three hidden layers of 128,
// 256 and 128 units (whose per-layer parameter counts match the paper's
// 8 320 / 33 024 / 32 896 / 129 breakdown; see DESIGN.md §5).
var PaperHidden = []int{128, 256, 128}

// DetectorConfig controls detector training.
type DetectorConfig struct {
	Features dataset.FeatureSet
	Hidden   []int
	Train    nn.TrainConfig
	Seed     int64
}

// validHidden rejects non-positive layer widths (empty selects PaperHidden).
func validHidden(hidden []int) error {
	for i, h := range hidden {
		if h <= 0 {
			return fmt.Errorf("core: hidden layer %d has non-positive width %d", i, h)
		}
	}
	return nil
}

// Validate reports whether the configuration is trainable: the feature set
// must be a known one, hidden layer widths must be positive (an empty
// slice selects PaperHidden) and the training hyper-parameters must
// validate. TrainDetector calls it.
func (c DetectorConfig) Validate() error {
	if !c.Features.Valid() {
		return fmt.Errorf("core: unknown feature set %d", int(c.Features))
	}
	if err := validHidden(c.Hidden); err != nil {
		return err
	}
	return c.Train.Validate()
}

// DefaultDetectorConfig returns the paper's configuration: the C+E feature
// set, the 4-dense-layer MLP, 10 epochs at lr 5e-3 with AdamW decay.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Features: dataset.FeatCSIEnv,
		Hidden:   append([]int(nil), PaperHidden...),
		Train:    nn.DefaultTrainConfig(),
		Seed:     1,
	}
}

// Detector is a trained occupancy classifier.
type Detector struct {
	Net      *nn.Network
	Scaler   *linmodel.Scaler
	Features dataset.FeatureSet
}

// TrainDetector fits the paper's MLP on the training fold.
func TrainDetector(train *dataset.Dataset, cfg DetectorConfig) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	x, yi := train.Matrix(cfg.Features)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	y := tensor.NewMatrix(len(yi), 1)
	for i, v := range yi {
		y.Set(i, 0, float64(v))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.NewMLP(cfg.Features.Dim(), cfg.Hidden, 1, rng)
	net.Fit(xs, y, nn.BCEWithLogits{}, cfg.Train)
	return &Detector{Net: net, Scaler: scaler, Features: cfg.Features}, nil
}

// Evaluate runs the detector over a fold and returns the confusion matrix.
func (d *Detector) Evaluate(ds *dataset.Dataset) stats.ConfusionMatrix {
	x, y := ds.Matrix(d.Features)
	xs := d.Scaler.Transform(x)
	pred := d.Net.PredictBinary(xs)
	var cm stats.ConfusionMatrix
	for i := range y {
		cm.Observe(y[i], pred[i])
	}
	return cm
}

// PredictRecord classifies one record, returning P(occupied) and the label.
// This is the direct (one record, one forward) reference path; a fleet of
// feeds sharing one model should go through DetectorEngine instead, which
// produces bit-identical results with batching and no per-call garbage.
func (d *Detector) PredictRecord(r *dataset.Record) (float64, int) {
	row := dataset.FeatureRow(r, d.Features)
	d.Scaler.TransformRow(row)
	x := tensor.FromSlice(1, len(row), row)
	var probs [1]float64
	d.Net.PredictProbsInto(probs[:], x)
	if p := probs[0]; p >= 0.5 {
		return p, 1
	}
	return probs[0], 0
}

// EnvRegressor estimates temperature and humidity from CSI amplitudes (the
// §V-D "non-linear regression ... implemented with our neural network
// model"). Targets are standardised internally for optimisation stability
// and un-standardised on prediction.
type EnvRegressor struct {
	Net     *nn.Network
	Scaler  *linmodel.Scaler
	YMean   [2]float64
	YStd    [2]float64
	Feature dataset.FeatureSet
}

// EnvRegressorConfig controls EnvRegressor training.
type EnvRegressorConfig struct {
	Hidden []int
	Train  nn.TrainConfig
	Seed   int64
}

// Validate reports whether the configuration is trainable (see
// DetectorConfig.Validate; the regressor always reads CSI features, so
// there is no feature-set field to check). TrainEnvRegressor calls it.
func (c EnvRegressorConfig) Validate() error {
	if err := validHidden(c.Hidden); err != nil {
		return err
	}
	return c.Train.Validate()
}

// DefaultEnvRegressorConfig mirrors the detector's architecture with an MSE
// objective.
func DefaultEnvRegressorConfig() EnvRegressorConfig {
	return EnvRegressorConfig{
		Hidden: append([]int(nil), PaperHidden...),
		Train:  nn.DefaultTrainConfig(),
		Seed:   1,
	}
}

// TrainEnvRegressor fits (T, H) ← CSI on the training fold.
func TrainEnvRegressor(train *dataset.Dataset, cfg EnvRegressorConfig) (*EnvRegressor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	x, _ := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	yRaw := train.EnvTargets()
	reg := &EnvRegressor{Scaler: scaler, Feature: dataset.FeatCSI}
	y := tensor.NewMatrix(yRaw.Rows, 2)
	for c := 0; c < 2; c++ {
		col := make([]float64, yRaw.Rows)
		for i := range col {
			col[i] = yRaw.At(i, c)
		}
		m, s := stats.Mean(col), stats.StdDev(col)
		if s < 1e-9 {
			s = 1
		}
		reg.YMean[c], reg.YStd[c] = m, s
		for i := range col {
			y.Set(i, c, (col[i]-m)/s)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg.Net = nn.NewMLP(dataset.FeatCSI.Dim(), cfg.Hidden, 2, rng)
	reg.Net.Fit(xs, y, nn.MSE{}, cfg.Train)
	return reg, nil
}

// Predict returns the estimated (temperature, humidity) series for a fold.
func (e *EnvRegressor) Predict(ds *dataset.Dataset) (temp, hum []float64) {
	x, _ := ds.Matrix(e.Feature)
	xs := e.Scaler.Transform(x)
	cols := e.Net.PredictRegression(xs)
	temp = make([]float64, len(cols[0]))
	hum = make([]float64, len(cols[1]))
	for i := range temp {
		temp[i] = cols[0][i]*e.YStd[0] + e.YMean[0]
		hum[i] = cols[1][i]*e.YStd[1] + e.YMean[1]
	}
	return temp, hum
}

// --- persistence -----------------------------------------------------------

const bundleMagic = 0x4F434244 // "OCBD"

// Save writes the detector (scaler + network) to w.
func (d *Detector) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(bundleMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int32(d.Features)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(d.Scaler.Mean))); err != nil {
		return err
	}
	for _, v := range d.Scaler.Mean {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range d.Scaler.Std {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := d.Net.Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadDetector reads a detector bundle written by Save.
func LoadDetector(r io.Reader) (*Detector, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != bundleMagic {
		return nil, fmt.Errorf("core: bad detector bundle magic 0x%08X", magic)
	}
	var feat int32
	if err := binary.Read(br, binary.LittleEndian, &feat); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("core: implausible scaler width %d", n)
	}
	sc := &linmodel.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
	for i := range sc.Mean {
		if err := binary.Read(br, binary.LittleEndian, &sc.Mean[i]); err != nil {
			return nil, err
		}
	}
	for i := range sc.Std {
		if err := binary.Read(br, binary.LittleEndian, &sc.Std[i]); err != nil {
			return nil, err
		}
		if sc.Std[i] == 0 || math.IsNaN(sc.Std[i]) {
			return nil, fmt.Errorf("core: corrupt scaler std at %d", i)
		}
	}
	if !dataset.FeatureSet(feat).Valid() {
		return nil, fmt.Errorf("core: bundle has unknown feature set %d", feat)
	}
	net, err := nn.Load(br)
	if err != nil {
		return nil, err
	}
	d := &Detector{Net: net, Scaler: sc, Features: dataset.FeatureSet(feat)}
	if d.Features.Dim() != int(n) || net.InputDim() != int(n) {
		return nil, fmt.Errorf("core: bundle dimensions disagree (feat=%v scaler=%d net=%d)",
			d.Features, n, net.InputDim())
	}
	return d, nil
}

// SaveFile / LoadDetectorFile are the path-based variants.
func (d *Detector) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDetectorFile reads a detector bundle from path.
func LoadDetectorFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDetector(f)
}
