package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
)

// testSplit generates a small but regime-rich trace: late afternoon through
// the night into the next morning, so both classes appear in train and test.
func testSplit(t *testing.T) (*dataset.Dataset, *dataset.Split) {
	t.Helper()
	cfg := dataset.DefaultGenConfig(1.0/20, 5) // one sample / 20 s
	cfg.Start = time.Date(2022, 1, 5, 12, 0, 0, 0, time.UTC)
	cfg.Duration = 26 * time.Hour
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := d.PaperSplit()
	if err != nil {
		t.Fatal(err)
	}
	return d, split
}

// quickCfg returns a small-but-real experiment configuration for tests.
func quickCfg() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Hidden = []int{32, 16}
	cfg.NNTrain.Epochs = 6
	cfg.NNTrain.BatchSize = 64
	cfg.MaxTrainSamples = 1500
	cfg.MaxEvalSamples = 400
	cfg.RF.NumTrees = 10
	cfg.RF.MaxDepth = 12
	cfg.Logistic.Epochs = 10
	return cfg
}

func quickDetectorCfg(feat dataset.FeatureSet) DetectorConfig {
	dcfg := DefaultDetectorConfig()
	dcfg.Features = feat
	dcfg.Hidden = []int{32, 16}
	dcfg.Train.Epochs = 6
	dcfg.Train.BatchSize = 64
	return dcfg
}

func TestTrainDetectorAndEvaluate(t *testing.T) {
	_, split := testSplit(t)
	det, err := TrainDetector(thin(split.Train, 1500), quickDetectorCfg(dataset.FeatCSI))
	if err != nil {
		t.Fatal(err)
	}
	// In-sample sanity: the CSI detector must beat chance comfortably.
	cm := det.Evaluate(thin(split.Train, 800))
	if cm.Accuracy() < 0.8 {
		t.Fatalf("train accuracy %.3f too low", cm.Accuracy())
	}
	// Single-record prediction agrees with batch path.
	r := &split.Train.Records[0]
	p, label := det.PredictRecord(r)
	if p < 0 || p > 1 {
		t.Fatalf("probability %g", p)
	}
	if (p >= 0.5) != (label == 1) {
		t.Fatal("threshold inconsistency")
	}
}

func TestTrainDetectorEmpty(t *testing.T) {
	if _, err := TrainDetector(&dataset.Dataset{}, DefaultDetectorConfig()); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestDetectorSaveLoadRoundtrip(t *testing.T) {
	_, split := testSplit(t)
	det, err := TrainDetector(thin(split.Train, 800), quickDetectorCfg(dataset.FeatCSIEnv))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Features != dataset.FeatCSIEnv {
		t.Fatal("feature set lost")
	}
	// Predictions agree to float32 precision.
	for i := 0; i < 20; i++ {
		r := &split.Train.Records[i*10]
		p1, _ := det.PredictRecord(r)
		p2, _ := back.PredictRecord(r)
		if d := p1 - p2; d > 1e-3 || d < -1e-3 {
			t.Fatalf("prediction drift %g", d)
		}
	}
}

func TestLoadDetectorRejectsGarbage(t *testing.T) {
	if _, err := LoadDetector(bytes.NewReader([]byte{9, 9, 9, 9})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := LoadDetector(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty reader accepted")
	}
}

func TestEnvRegressorLearns(t *testing.T) {
	_, split := testSplit(t)
	cfg := DefaultEnvRegressorConfig()
	cfg.Hidden = []int{32, 16}
	cfg.Train.Epochs = 10
	cfg.Train.BatchSize = 64
	reg, err := TrainEnvRegressor(thin(split.Train, 1500), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := thin(split.Train, 400)
	tPred, hPred := reg.Predict(ev)
	tTrue, _ := ev.Column("temp")
	hTrue, _ := ev.Column("humidity")
	var maeT, maeH float64
	for i := range tTrue {
		maeT += abs(tTrue[i] - tPred[i])
		maeH += abs(hTrue[i] - hPred[i])
	}
	maeT /= float64(len(tTrue))
	maeH /= float64(len(hTrue))
	// In-sample: must clearly beat predicting the mean (std of T over a
	// day is several °C).
	if maeT > 2.5 {
		t.Fatalf("temperature MAE %g too high", maeT)
	}
	if maeH > 5 {
		t.Fatalf("humidity MAE %g too high", maeH)
	}
	if _, err := TrainEnvRegressor(&dataset.Dataset{}, cfg); err == nil {
		t.Fatal("empty training set must error")
	}
}

func TestThin(t *testing.T) {
	d := &dataset.Dataset{Records: make([]dataset.Record, 100)}
	for i := range d.Records {
		d.Records[i].Count = i
	}
	if got := thin(d, 0); got.Len() != 100 {
		t.Fatal("0 keeps all")
	}
	if got := thin(d, 200); got.Len() != 100 {
		t.Fatal("cap above size keeps all")
	}
	th := thin(d, 10)
	if th.Len() < 5 || th.Len() > 10 {
		t.Fatalf("thin length %d", th.Len())
	}
	// Strided: covers the whole range, preserves order.
	if th.Records[0].Count != 0 {
		t.Fatal("first record dropped")
	}
	if th.Records[th.Len()-1].Count < 50 {
		t.Fatal("tail regime dropped")
	}
}

func TestRunFootprint(t *testing.T) {
	_, split := testSplit(t)
	dcfg := quickDetectorCfg(dataset.FeatCSIEnv)
	dcfg.Hidden = PaperHidden
	dcfg.Train.Epochs = 1
	det, err := TrainDetector(thin(split.Train, 300), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := RunFootprint(det, 50)
	// 66→128→256→128→1: 8576+33024+32896+129 = 74625 params.
	if fp.Params != 74625 {
		t.Fatalf("params %d", fp.Params)
	}
	if fp.SizeBytes != fp.Params*4 {
		t.Fatal("float32 size")
	}
	if fp.SizeKiB < 200 || fp.SizeKiB > 400 {
		t.Fatalf("KiB %g out of expected range", fp.SizeKiB)
	}
	if fp.InferencePerSample <= 0 {
		t.Fatal("latency must be positive")
	}
}

func TestDefaultConfigsConsistent(t *testing.T) {
	d := DefaultDetectorConfig()
	if d.Features != dataset.FeatCSIEnv || len(d.Hidden) != 3 {
		t.Fatalf("detector defaults %+v", d)
	}
	if d.Train.Epochs != 10 || d.Train.LR != 5e-3 {
		t.Fatal("paper hyper-parameters changed")
	}
	e := DefaultEnvRegressorConfig()
	if len(e.Hidden) != 3 {
		t.Fatal("regressor defaults")
	}
	x := DefaultExperimentConfig()
	if x.RF.NumTrees <= 0 || x.Logistic.Epochs <= 0 {
		t.Fatal("experiment defaults")
	}
	// Paper architecture invariant: CSI-only net has the Table/§IV-B
	// parameter breakdown.
	net := nn.NewMLP(64, PaperHidden, 1, newTestRng())
	if net.NumParams() != 8320+33024+32896+129 {
		t.Fatalf("CSI MLP params %d", net.NumParams())
	}
}
