package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// RobustnessConfig controls the fault-intensity sweep.
type RobustnessConfig struct {
	// Intensities are the fault-channel scale factors swept (0 = clean).
	// Empty selects the default grid.
	Intensities []float64
	// Profile is the base fault profile at intensity 1. A zero value
	// selects fault.DefaultProfile.
	Profile fault.Config
	// FullEnvOutage additionally kills the env feed for the entire stream
	// at every non-zero intensity — the "sensor unplugged" scenario that
	// must drive the runtime into its CSI-only fallback.
	FullEnvOutage bool
	// WatchdogFrames / RecoverFrames / MaxHoldGap tune the runtime (zero:
	// stream defaults).
	WatchdogFrames int
	RecoverFrames  int
	MaxHoldGap     int
	// SmootherNeed enables hysteresis smoothing of scored decisions. Keep
	// zero to score raw per-sample predictions (required for the clean
	// run to reproduce Table IV bit-identically).
	SmootherNeed int
}

// Validate reports whether the sweep is runnable: intensities must be
// non-negative, the base fault profile must validate, and the runtime
// tuning knobs must be non-negative (zero selects stream defaults).
func (c RobustnessConfig) Validate() error {
	for i, v := range c.Intensities {
		if v < 0 {
			return fmt.Errorf("core: negative fault intensity %g at index %d", v, i)
		}
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.WatchdogFrames < 0 || c.RecoverFrames < 0 || c.MaxHoldGap < 0 || c.SmootherNeed < 0 {
		return fmt.Errorf("core: negative runtime tuning (watchdog %d, recover %d, hold %d, smoother %d)",
			c.WatchdogFrames, c.RecoverFrames, c.MaxHoldGap, c.SmootherNeed)
	}
	return nil
}

// DefaultRobustnessConfig sweeps from clean to heavily degraded.
func DefaultRobustnessConfig() RobustnessConfig {
	return RobustnessConfig{
		Intensities: []float64{0, 0.25, 0.5, 1, 2},
	}
}

// RobustnessPoint is one intensity level of the sweep.
type RobustnessPoint struct {
	Intensity float64
	// CSIOnly[fold] is the accuracy (%) of the CSI-only MLP run through
	// the fault channel and runtime. At intensity 0 it equals the Table IV
	// MLP/CSI column bit-for-bit.
	CSIOnly []float64
	// Pipeline[fold] is the accuracy (%) of the full degradation pipeline:
	// C+E primary detector with CSI-only fallback.
	Pipeline []float64
	// CSIAvg / PipeAvg are the per-intensity fold averages.
	CSIAvg, PipeAvg float64
	// DropRate is the measured frame-loss fraction across all folds.
	DropRate float64
	// FallbackFrac is the fraction of pipeline frames served by the
	// fallback detector.
	FallbackFrac float64
	// ImputedFrac / HeldFrac are the fractions of frames with bridged CSI
	// and held decisions.
	ImputedFrac, HeldFrac float64
	// Degradations / Recoveries aggregate the pipeline's mode transitions.
	Degradations, Recoveries int
	// MaxFirstFallbackFrame is the latest (across folds) frame index at
	// which the pipeline first fell back (-1 if it never did). Under a
	// full env outage this must stay within one watchdog interval.
	MaxFirstFallbackFrame int
	// TraceHash digests every fold's fault trace at this intensity; equal
	// hashes mean identical fault sequences (the determinism contract).
	TraceHash uint64
}

// RobustnessResult is the accuracy-vs-fault-rate curve of the sweep.
type RobustnessResult struct {
	Points []RobustnessPoint
}

// robustCell is one (intensity, fold) evaluation.
type robustCell struct {
	csiAcc, pipeAcc float64
	frames          int
	dropped         int
	fallback        int
	imputed         int
	held            int
	degradations    int
	recoveries      int
	firstFallback   int
	traceHash       uint64
}

// RunRobustness sweeps fault intensity over the test folds, evaluating two
// detector stacks through the fault channel and streaming runtime:
//
//   - the CSI-only MLP (the deployment's last line of defence), and
//   - the full pipeline — C+E primary with CSI-only fallback behind the
//     env-feed watchdog.
//
// Both MLPs are trained exactly as their RunTable4 cells are, so the clean
// (intensity 0) sweep reproduces the Table IV MLP accuracies bit-
// identically. The (intensity × fold) grid fans out over cfg.Workers
// goroutines; every cell derives its injector seed from its index alone,
// so results and fault traces are bit-identical for any worker count.
func RunRobustness(split *dataset.Split, cfg ExperimentConfig, rcfg RobustnessConfig) (*RobustnessResult, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	if len(rcfg.Intensities) == 0 {
		rcfg.Intensities = DefaultRobustnessConfig().Intensities
	}
	if !rcfg.Profile.Active() {
		rcfg.Profile = fault.DefaultProfile(0)
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	workers := parallel.Workers(cfg.Workers)

	// Train the two MLP cells with the exact RunTable4 recipe (same seed
	// derivation, same scaler fit, same init) so intensity 0 reproduces
	// the corresponding Table IV cells bit-identically.
	feats := []dataset.FeatureSet{dataset.FeatCSI, dataset.FeatCSIEnv}
	dets := make([]*Detector, len(feats))
	parallel.ForEach(workers, len(feats), func(i int) {
		x, y := train.Matrix(feats[i])
		scaler := linmodel.FitScaler(x)
		yF := tensor.NewMatrix(len(y), 1)
		for j, v := range y {
			yF.Set(j, 0, float64(v))
		}
		tcfg := cfg.NNTrain
		tcfg.Seed = cfg.Seed
		net := nn.NewMLP(feats[i].Dim(), cfg.Hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
		net.Fit(scaler.Transform(x), yF, nn.BCEWithLogits{}, tcfg)
		dets[i] = &Detector{Net: net, Scaler: scaler, Features: feats[i]}
	})
	csiDet, cePrim := dets[0], dets[1]

	nInt, nFold := len(rcfg.Intensities), len(split.Folds)
	seeds := parallel.Seeds(cfg.Seed^0x526F6275, nInt*nFold) // "Robu"
	cells := make([]robustCell, nInt*nFold)
	cellErrs := make([]error, nInt*nFold)
	parallel.ForEach(workers, nInt*nFold, func(ci int) {
		ii, fi := ci/nFold, ci%nFold
		intensity := rcfg.Intensities[ii]
		fcfg := rcfg.Profile.Scale(intensity)
		fcfg.Seed = seeds[ci]
		if rcfg.FullEnvOutage && intensity > 0 {
			fcfg.EnvDead = true
		}
		cells[ci], cellErrs[ci] = runRobustnessCell(thin(split.Folds[fi], cfg.MaxEvalSamples), fcfg, csiDet, cePrim, rcfg)
	})
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}

	res := &RobustnessResult{Points: make([]RobustnessPoint, nInt)}
	for ii := range res.Points {
		p := RobustnessPoint{
			Intensity:             rcfg.Intensities[ii],
			CSIOnly:               make([]float64, nFold),
			Pipeline:              make([]float64, nFold),
			TraceHash:             1469598103934665603,
			MaxFirstFallbackFrame: -1,
		}
		var frames, dropped, fallback, imputed, held int
		for fi := 0; fi < nFold; fi++ {
			c := &cells[ii*nFold+fi]
			p.CSIOnly[fi] = c.csiAcc
			p.Pipeline[fi] = c.pipeAcc
			p.CSIAvg += c.csiAcc
			p.PipeAvg += c.pipeAcc
			frames += c.frames
			dropped += c.dropped
			fallback += c.fallback
			imputed += c.imputed
			held += c.held
			p.Degradations += c.degradations
			p.Recoveries += c.recoveries
			if c.firstFallback > p.MaxFirstFallbackFrame {
				p.MaxFirstFallbackFrame = c.firstFallback
			}
			p.TraceHash ^= c.traceHash
			p.TraceHash *= 1099511628211
		}
		p.CSIAvg /= float64(nFold)
		p.PipeAvg /= float64(nFold)
		if frames > 0 {
			p.DropRate = float64(dropped) / float64(frames)
			p.FallbackFrac = float64(fallback) / float64(frames)
			p.ImputedFrac = float64(imputed) / float64(frames)
			p.HeldFrac = float64(held) / float64(frames)
		}
		res.Points[ii] = p
	}
	return res, nil
}

// runRobustnessCell streams one fold through one fault configuration,
// scoring the CSI-only detector and the degradation pipeline on the same
// fault trace.
func runRobustnessCell(fold *dataset.Dataset, fcfg fault.Config, csiDet, cePrim *Detector, rcfg RobustnessConfig) (robustCell, error) {
	var cell robustCell
	// Per-cell registries stand in for the removed Stats() snapshots: each
	// component writes its counters to a private Registry the cell reads
	// back after the stream ends. Registries are cheap (a map and a mutex)
	// and cells never share one, so the fan-out stays deterministic.
	injReg, pipeReg, csiReg := obs.NewRegistry(), obs.NewRegistry(), obs.NewRegistry()
	fcfg.Observer = injReg
	inj := fault.NewInjector(fcfg)

	csiRT, err := stream.New(stream.Config{
		Primary:      csiDet,
		MaxHoldGap:   rcfg.MaxHoldGap,
		SmootherNeed: rcfg.SmootherNeed,
		Observer:     csiReg,
	})
	if err != nil {
		return cell, err
	}
	pipeRT, err := stream.New(stream.Config{
		Primary:        cePrim,
		Fallback:       csiDet,
		PrimaryUsesEnv: true,
		MaxHoldGap:     rcfg.MaxHoldGap,
		WatchdogFrames: rcfg.WatchdogFrames,
		RecoverFrames:  rcfg.RecoverFrames,
		SmootherNeed:   rcfg.SmootherNeed,
		Observer:       pipeReg,
	})
	if err != nil {
		return cell, err
	}

	csiTrue := make([]int, 0, fold.Len())
	csiPred := make([]int, 0, fold.Len())
	pipePred := make([]int, 0, fold.Len())
	for i := range fold.Records {
		f := inj.Apply(fold.Records[i])
		truth := f.Truth.Label()
		dc := csiRT.Process(f)
		dp := pipeRT.Process(f)
		csiTrue = append(csiTrue, truth)
		csiPred = append(csiPred, dc.State)
		pipePred = append(pipePred, dp.State)
	}
	cell.csiAcc = 100 * stats.Accuracy(csiTrue, csiPred)
	cell.pipeAcc = 100 * stats.Accuracy(csiTrue, pipePred)

	count := func(reg *obs.Registry, name string) int {
		return int(reg.Counter(name, "").Value())
	}
	cell.frames = count(injReg, "fault_frames_total")
	cell.dropped = count(injReg, "fault_dropped_total")
	cell.fallback = count(pipeReg, "stream_fallback_frames_total")
	cell.imputed = count(pipeReg, "stream_csi_imputed_total")
	cell.held = count(pipeReg, "stream_held_frames_total") + count(csiReg, "stream_held_frames_total")
	cell.degradations = count(pipeReg, "stream_degradations_total")
	cell.recoveries = count(pipeReg, "stream_recoveries_total")
	cell.firstFallback = pipeRT.FirstFallbackFrame()
	cell.traceHash = inj.TraceHash()
	return cell, nil
}
