package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rf"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/xai"
)

// ModelName identifies the three Table IV model families.
type ModelName string

// The Table IV models.
const (
	ModelLogistic ModelName = "Logistic Regressor"
	ModelRF       ModelName = "Random Forest"
	ModelMLP      ModelName = "MLP"
)

// Table4Models lists the models in the paper's column order.
var Table4Models = []ModelName{ModelLogistic, ModelRF, ModelMLP}

// Table4Features lists the feature subsets in the paper's column order.
var Table4Features = []dataset.FeatureSet{dataset.FeatCSI, dataset.FeatEnv, dataset.FeatCSIEnv}

// ExperimentConfig bundles the scale and hyper-parameter knobs shared by
// the experiment runners. Zero values take paper defaults.
type ExperimentConfig struct {
	// MaxTrainSamples caps the training set via deterministic striding
	// (0 = use everything). The paper trains on 3.75M rows; a pure-Go
	// reproduction thins the same distribution instead.
	MaxTrainSamples int
	// MaxEvalSamples caps each evaluation fold the same way (0 = all).
	MaxEvalSamples int
	Hidden         []int
	NNTrain        nn.TrainConfig
	RF             rf.ForestConfig
	Logistic       linmodel.LogisticConfig
	Seed           int64
	// Workers bounds the goroutines the experiment grids fan out across
	// (<=0 means GOMAXPROCS). Results are bit-identical for every value —
	// each task derives its inputs from the task index and the config seed,
	// never from scheduling order; see internal/parallel.
	Workers int
}

// Validate reports whether the grid is runnable: sample caps must be
// non-negative (0 = use everything), hidden widths positive, and the
// per-model hyper-parameters must each validate.
func (c ExperimentConfig) Validate() error {
	if c.MaxTrainSamples < 0 || c.MaxEvalSamples < 0 {
		return fmt.Errorf("core: negative sample caps (train %d, eval %d)", c.MaxTrainSamples, c.MaxEvalSamples)
	}
	if err := validHidden(c.Hidden); err != nil {
		return err
	}
	if err := c.NNTrain.Validate(); err != nil {
		return err
	}
	if err := c.RF.Validate(); err != nil {
		return err
	}
	return c.Logistic.Validate()
}

// DefaultExperimentConfig returns the paper-default hyper-parameters.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Hidden:   append([]int(nil), PaperHidden...),
		NNTrain:  nn.DefaultTrainConfig(),
		RF:       rf.DefaultForestConfig(),
		Logistic: linmodel.DefaultLogisticConfig(),
		Seed:     1,
	}
}

// thin returns a stride-subsampled view with at most max records (max<=0
// keeps everything). Striding preserves the temporal spread, unlike a
// prefix cut which would drop whole regimes.
func thin(d *dataset.Dataset, max int) *dataset.Dataset {
	if max <= 0 || d.Len() <= max {
		return d
	}
	stride := (d.Len() + max - 1) / max
	out := &dataset.Dataset{Records: make([]dataset.Record, 0, max)}
	for i := 0; i < d.Len(); i += stride {
		out.Records = append(out.Records, d.Records[i])
	}
	return out
}

// Table4Result holds occupancy accuracy per fold / model / feature subset,
// plus the per-column averages (the paper's "Avg." row), in percent.
type Table4Result struct {
	// Acc[fold][model][feature] with fold 0..4 = paper folds 1..5.
	Acc [][]map[dataset.FeatureSet]float64
	Avg []map[dataset.FeatureSet]float64 // per model
}

// RunTable4 reproduces Table IV: trains Logistic Regression, Random Forest
// and the MLP on each of the three feature subsets on the training fold and
// evaluates each of the five test folds. Models are trained exactly once —
// fold evaluation never re-trains (§V-B).
//
// The grid runs in three parallel stages on cfg.Workers goroutines: feature
// preparation (one task per subset), cell training (one task per
// model×subset combination), and fold evaluation (one task per
// subset×fold, scoring all three trained models against a shared design
// matrix). Every task derives its inputs from its index and cfg alone, so
// the result is bit-identical to the sequential run for any worker count.
func RunTable4(split *dataset.Split, cfg ExperimentConfig) (*Table4Result, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	workers := parallel.Workers(cfg.Workers)
	nFeat, nModel, nFold := len(Table4Features), len(Table4Models), len(split.Folds)

	// Stage 1: per-subset design matrices and scalers.
	type featData struct {
		x, xStd *tensor.Matrix
		y       []int
		yF      *tensor.Matrix
		scaler  *linmodel.Scaler
	}
	prep := parallel.Map(workers, nFeat, func(i int) featData {
		x, y := train.Matrix(Table4Features[i])
		scaler := linmodel.FitScaler(x)
		yF := tensor.NewMatrix(len(y), 1)
		for j, v := range y {
			yF.Set(j, 0, float64(v))
		}
		return featData{x: x, xStd: scaler.Transform(x), y: y, yF: yF, scaler: scaler}
	})

	// Stage 2: the nine cells train concurrently. Each task fills only its
	// own slot with a prediction closure over the trained model; all three
	// closures are inference-only and safe to call from many goroutines.
	preds := make([]func(xf, xfStd *tensor.Matrix) []int, nModel*nFeat)
	parallel.ForEach(workers, nModel*nFeat, func(ci int) {
		mi, fi := ci/nFeat, ci%nFeat
		d := prep[fi]
		switch Table4Models[mi] {
		case ModelLogistic:
			logit := &linmodel.Logistic{}
			lcfg := cfg.Logistic
			lcfg.Seed = cfg.Seed
			logit.Fit(d.xStd, d.y, lcfg)
			preds[ci] = func(_, xfStd *tensor.Matrix) []int { return logit.Predict(xfStd) }
		case ModelRF:
			rfcfg := cfg.RF
			rfcfg.Seed = cfg.Seed
			forest := rf.FitClassifier(d.x, d.y, rfcfg)
			preds[ci] = func(xf, _ *tensor.Matrix) []int { return forest.Predict(xf) }
		case ModelMLP:
			tcfg := cfg.NNTrain
			tcfg.Seed = cfg.Seed
			net := nn.NewMLP(Table4Features[fi].Dim(), cfg.Hidden, 1, rand.New(rand.NewSource(cfg.Seed)))
			net.Fit(d.xStd, d.yF, nn.BCEWithLogits{}, tcfg)
			preds[ci] = func(_, xfStd *tensor.Matrix) []int { return net.PredictBinary(xfStd) }
		}
	})

	// Stage 3: evaluation fans out per (subset, fold) into a flat array —
	// the result maps are filled serially afterwards because Go maps do not
	// tolerate concurrent writes.
	acc := make([]float64, nFold*nModel*nFeat)
	parallel.ForEach(workers, nFeat*nFold, func(ti int) {
		fi, foldI := ti/nFold, ti%nFold
		ev := thin(split.Folds[foldI], cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(Table4Features[fi])
		xfStd := prep[fi].scaler.Transform(xf)
		for mi := 0; mi < nModel; mi++ {
			p := preds[mi*nFeat+fi](xf, xfStd)
			acc[(foldI*nModel+mi)*nFeat+fi] = 100 * stats.Accuracy(yf, p)
		}
	})

	res := &Table4Result{
		Acc: make([][]map[dataset.FeatureSet]float64, nFold),
		Avg: make([]map[dataset.FeatureSet]float64, nModel),
	}
	for foldI := range res.Acc {
		res.Acc[foldI] = make([]map[dataset.FeatureSet]float64, nModel)
		for mi := range res.Acc[foldI] {
			res.Acc[foldI][mi] = map[dataset.FeatureSet]float64{}
			for fi, feat := range Table4Features {
				res.Acc[foldI][mi][feat] = acc[(foldI*nModel+mi)*nFeat+fi]
			}
		}
	}
	for mi := range res.Avg {
		res.Avg[mi] = map[dataset.FeatureSet]float64{}
		for fi, feat := range Table4Features {
			var s float64
			for foldI := 0; foldI < nFold; foldI++ {
				s += acc[(foldI*nModel+mi)*nFeat+fi]
			}
			res.Avg[mi][feat] = s / float64(nFold)
		}
	}
	return res, nil
}

// RegScores is one cell pair of Table V for one fold: MAE and MAPE for the
// temperature (T) and humidity (H) targets.
type RegScores struct {
	MAET, MAEH   float64
	MAPET, MAPEH float64
}

// Table5Result holds the Table V grid: per fold, linear vs neural scores.
type Table5Result struct {
	Linear []RegScores // per fold
	Neural []RegScores
	AvgLin RegScores
	AvgNN  RegScores
}

// RunTable5 reproduces Table V: ordinary least squares and the MLP both
// regress temperature and humidity from the 64 CSI amplitudes, trained on
// the training fold, evaluated per test fold.
func RunTable5(split *dataset.Split, cfg ExperimentConfig) (*Table5Result, error) {
	if len(split.Folds) == 0 {
		return nil, fmt.Errorf("core: split has no test folds")
	}
	train := thin(split.Train, cfg.MaxTrainSamples)
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = append([]int(nil), PaperHidden...)
	}
	workers := parallel.Workers(cfg.Workers)

	// The two regressors train concurrently; errors are kept per-slot.
	var lin *linmodel.Linear
	var reg *EnvRegressor
	var linErr, regErr error
	parallel.ForEach(workers, 2, func(i int) {
		if i == 0 {
			// Linear: OLS on raw CSI, tiny ridge for collinear subcarriers.
			xTrain, _ := train.Matrix(dataset.FeatCSI)
			lin, linErr = linmodel.FitLinear(xTrain, train.EnvTargets(), 1e-8)
			return
		}
		// Neural: the shared EnvRegressor.
		ecfg := EnvRegressorConfig{Hidden: cfg.Hidden, Train: cfg.NNTrain, Seed: cfg.Seed}
		ecfg.Train.Seed = cfg.Seed
		reg, regErr = TrainEnvRegressor(train, ecfg)
	})
	if linErr != nil {
		return nil, fmt.Errorf("core: Table V OLS: %w", linErr)
	}
	if regErr != nil {
		return nil, regErr
	}

	res := &Table5Result{
		Linear: make([]RegScores, len(split.Folds)),
		Neural: make([]RegScores, len(split.Folds)),
	}
	parallel.ForEach(workers, len(split.Folds), func(fi int) {
		ev := thin(split.Folds[fi], cfg.MaxEvalSamples)
		xf, _ := ev.Matrix(dataset.FeatCSI)
		tTrue, _ := ev.Column("temp")
		hTrue, _ := ev.Column("humidity")

		linPred := lin.Predict(xf)
		res.Linear[fi] = RegScores{
			MAET:  stats.MAE(tTrue, linPred[0]),
			MAEH:  stats.MAE(hTrue, linPred[1]),
			MAPET: stats.MAPE(tTrue, linPred[0]),
			MAPEH: stats.MAPE(hTrue, linPred[1]),
		}

		tPred, hPred := reg.Predict(ev)
		res.Neural[fi] = RegScores{
			MAET:  stats.MAE(tTrue, tPred),
			MAEH:  stats.MAE(hTrue, hPred),
			MAPET: stats.MAPE(tTrue, tPred),
			MAPEH: stats.MAPE(hTrue, hPred),
		}
	})
	res.AvgLin = avgScores(res.Linear)
	res.AvgNN = avgScores(res.Neural)
	return res, nil
}

func avgScores(s []RegScores) RegScores {
	var a RegScores
	if len(s) == 0 {
		return a
	}
	for _, v := range s {
		a.MAET += v.MAET
		a.MAEH += v.MAEH
		a.MAPET += v.MAPET
		a.MAPEH += v.MAPEH
	}
	n := float64(len(s))
	a.MAET /= n
	a.MAEH /= n
	a.MAPET /= n
	a.MAPEH /= n
	return a
}

// Figure3Result is the Grad-CAM importance profile over the 66 C+E inputs.
type Figure3Result struct {
	// Importance[0..63] are the CSI subcarriers, [64] temperature,
	// [65] humidity — the x-axis of Figure 3.
	Importance []float64
	// CSIMass and EnvMass are the absolute-importance shares.
	CSIMass, EnvMass float64
	// TopSubcarriers are the five most important CSI inputs.
	TopSubcarriers []int
}

// RunFigure3 trains the C+E detector and applies Grad-CAM over a
// (subsampled) batch of evaluation records, reproducing Figure 3.
func RunFigure3(split *dataset.Split, cfg ExperimentConfig) (*Figure3Result, error) {
	dcfg := DefaultDetectorConfig()
	dcfg.Features = dataset.FeatCSIEnv
	if len(cfg.Hidden) > 0 {
		dcfg.Hidden = cfg.Hidden
	}
	dcfg.Train = cfg.NNTrain
	dcfg.Seed = cfg.Seed
	det, err := TrainDetector(thin(split.Train, cfg.MaxTrainSamples), dcfg)
	if err != nil {
		return nil, err
	}
	return ExplainDetector(det, split, cfg.MaxEvalSamples)
}

// ExplainDetector applies Grad-CAM to an already-trained C+E detector.
func ExplainDetector(det *Detector, split *dataset.Split, maxBatch int) (*Figure3Result, error) {
	if det.Features != dataset.FeatCSIEnv {
		return nil, fmt.Errorf("core: Figure 3 needs the C+E detector, got %v", det.Features)
	}
	// Explanation batch: all test folds pooled, thinned.
	pool := &dataset.Dataset{}
	for _, f := range split.Folds {
		pool.Records = append(pool.Records, f.Records...)
	}
	if maxBatch <= 0 {
		maxBatch = 2048
	}
	batch := thin(pool, maxBatch)
	x, _ := batch.Matrix(dataset.FeatCSIEnv)
	xs := det.Scaler.Transform(x)
	cam, err := xai.GradCAM(det.Net, xs, 1)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{
		Importance:     cam.InputImportance,
		CSIMass:        cam.MassFraction(0, 64),
		EnvMass:        cam.MassFraction(64, 66),
		TopSubcarriers: nil,
	}
	for _, idx := range cam.TopFeatures(len(cam.InputImportance)) {
		if idx < 64 {
			res.TopSubcarriers = append(res.TopSubcarriers, idx)
			if len(res.TopSubcarriers) == 5 {
				break
			}
		}
	}
	return res, nil
}

// ProfileResult carries the §V-A data-profiling numbers.
type ProfileResult struct {
	// Pearson correlations reported in the text.
	TempHum, TempOcc, HumOcc float64
	TimeTemp, TimeHum        float64
	// SubcarrierEnvCorrMax is the strongest |ρ| between any subcarrier
	// and temperature or humidity.
	SubcarrierEnvCorrMax float64
	// ADF stationarity verdicts for the key series.
	TempStationary, HumStationary, CSIStationary bool
	ADFTemp, ADFHum, ADFCSI                      stats.ADFResult
	// KPSS confirmatory tests (null: stationary).
	KPSSTemp, KPSSHum, KPSSCSI stats.KPSSResult
}

// RunProfile reproduces the §V-A time-series analysis on the full dataset:
// the Pearson correlation structure and the ADF stationarity verdicts.
// The CSI amplitudes reject the unit root decisively, like the paper's.
// The synthetic temperature/humidity series include the scripted fold-4
// outage and fold-5 boost regimes, which a unit-root test correctly reads
// as trending — their verdicts are reported as measured and the deviation
// from the paper's blanket "all stationary" claim is documented in
// EXPERIMENTS.md.
func RunProfile(d *dataset.Dataset, maxSamples int) (*ProfileResult, error) {
	if d.Len() < 50 {
		return nil, fmt.Errorf("core: dataset too small to profile (%d records)", d.Len())
	}
	thinned := thin(d, maxSamples)
	temp, _ := thinned.Column("temp")
	hum, _ := thinned.Column("humidity")
	occ, _ := thinned.Column("occupancy")
	tod, _ := thinned.Column("time")

	res := &ProfileResult{
		TempHum:  stats.Pearson(temp, hum),
		TempOcc:  stats.Pearson(temp, occ),
		HumOcc:   stats.Pearson(hum, occ),
		TimeTemp: stats.Pearson(tod, temp),
		TimeHum:  stats.Pearson(tod, hum),
	}
	for k := 0; k < 64; k += 4 {
		col, err := thinned.Column(fmt.Sprintf("a%d", k))
		if err != nil {
			return nil, err
		}
		for _, env := range [][]float64{temp, hum} {
			if r := abs(stats.Pearson(col, env)); r > res.SubcarrierEnvCorrMax {
				res.SubcarrierEnvCorrMax = r
			}
		}
	}

	// ADF runs on the fine-grained series, like the paper's profiling of
	// the 20 Hz capture: at sampling intervals far below the thermal time
	// constants, sensor noise dominates sample-to-sample variation and the
	// unit-root null is rejected decisively for every series.
	var err error
	if res.ADFTemp, err = stats.ADF(temp, adfLags(len(temp))); err != nil {
		return nil, err
	}
	if res.ADFHum, err = stats.ADF(hum, adfLags(len(hum))); err != nil {
		return nil, err
	}
	a20, _ := thinned.Column("a20")
	if res.ADFCSI, err = stats.ADF(a20, adfLags(len(a20))); err != nil {
		return nil, err
	}
	if res.KPSSTemp, err = stats.KPSS(temp, -1); err != nil {
		return nil, err
	}
	if res.KPSSHum, err = stats.KPSS(hum, -1); err != nil {
		return nil, err
	}
	if res.KPSSCSI, err = stats.KPSS(a20, -1); err != nil {
		return nil, err
	}
	res.TempStationary = res.ADFTemp.Stationary()
	res.HumStationary = res.ADFHum.Stationary()
	res.CSIStationary = res.ADFCSI.Stationary()
	return res, nil
}

// thinToSpacing subsamples d so consecutive records are at least `spacing`
// apart, using the record timestamps.
func thinToSpacing(d *dataset.Dataset, spacing time.Duration) *dataset.Dataset {
	if d.Len() < 2 {
		return d
	}
	out := &dataset.Dataset{}
	next := d.Records[0].Time
	for i := range d.Records {
		if !d.Records[i].Time.Before(next) {
			out.Records = append(out.Records, d.Records[i])
			next = d.Records[i].Time.Add(spacing)
		}
	}
	return out
}

func adfLags(n int) int {
	l := n / 50
	if l < 1 {
		l = 1
	}
	if l > 12 {
		l = 12
	}
	return l
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TimeOnlyResult is the §V-B ablation: accuracy using only time of day.
type TimeOnlyResult struct {
	PerFold []float64 // percent
	Avg     float64
}

// RunTimeOnly trains a compact tree ensemble on the seconds-of-day feature
// alone (the paper reports 89.3%, below the CSI models). A tree is the
// natural model here: "occupied during working hours" is an interval rule a
// single linear threshold on the clock cannot express.
func RunTimeOnly(split *dataset.Split, cfg ExperimentConfig) (*TimeOnlyResult, error) {
	train := thin(split.Train, cfg.MaxTrainSamples)
	x, y := train.Matrix(dataset.FeatTime)
	fcfg := rf.ForestConfig{NumTrees: 5, MaxDepth: 6, MinLeaf: 5, MTry: 1, Seed: cfg.Seed}
	forest := rf.FitClassifier(x, y, fcfg)
	res := &TimeOnlyResult{}
	for _, fold := range split.Folds {
		ev := thin(fold, cfg.MaxEvalSamples)
		xf, yf := ev.Matrix(dataset.FeatTime)
		acc := 100 * stats.Accuracy(yf, forest.Predict(xf))
		res.PerFold = append(res.PerFold, acc)
		res.Avg += acc
	}
	res.Avg /= float64(len(res.PerFold))
	return res, nil
}

// FootprintResult reproduces the §IV-B deployment numbers: parameter count,
// serialised model size, and single-sample inference latency. SizeBytes is
// the float32 deployment format by default; with int8 quantisation on
// (RunFootprintAt) it is the quantised artefact size — one byte per weight
// plus float32 biases and one scale per layer.
type FootprintResult struct {
	Params             int
	SizeBytes          int
	SizeKiB            float64
	Precision          string // "f64"/"f32" (float32 deployment format) or "int8"
	InferencePerSample time.Duration
}

// RunFootprint measures the detector's deployment footprint in the default
// float32 deployment format (Table-compatible: SizeBytes == Params×4).
func RunFootprint(det *Detector, iters int) *FootprintResult {
	res, err := RunFootprintAt(det, iters, "")
	if err != nil {
		// "" always parses; only a non-Dense stack can fail, and every
		// detector this repo trains is a Dense stack.
		panic(err)
	}
	return res
}

// RunFootprintAt measures the deployment footprint at a given serving
// precision. f64 and f32 both ship the float32 deployment format, so they
// report the same size; int8 reports the quantised size. The latency number
// stays the reference (float64 allocating forward) path in every case —
// Table IV/V and the §IV-B latency claim are reproduced unchanged.
func RunFootprintAt(det *Detector, iters int, precision string) (*FootprintResult, error) {
	if iters <= 0 {
		iters = 1000
	}
	prec, err := infer.ParsePrecision(precision)
	if err != nil {
		return nil, err
	}
	res := &FootprintResult{
		Params:    det.Net.NumParams(),
		Precision: string(prec),
	}
	if prec == infer.PrecisionI8 {
		nq, err := nn.NewNetworkI8(det.Net)
		if err != nil {
			return nil, err
		}
		res.SizeBytes = nq.SizeBytes()
	} else {
		res.SizeBytes = det.Net.SizeBytes(4)
	}
	res.SizeKiB = float64(res.SizeBytes) / 1024
	x := tensor.NewMatrix(1, det.Features.Dim())
	for j := range x.Data {
		x.Data[j] = 0.1 * float64(j%7)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		det.Net.PredictProbs(x)
	}
	res.InferencePerSample = time.Since(start) / time.Duration(iters)
	return res, nil
}
