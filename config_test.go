package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// configStruct is one exported configuration struct found in the tree.
type configStruct struct {
	pkg  string // directory path, e.g. internal/stream
	name string
	pos  string
}

// TestEveryConfigHasValidate enforces the repository's configuration
// contract: every exported struct type named Config or *Config must carry a
// `Validate() error` method (value or pointer receiver) so callers can
// pre-flight any configuration — including ones built from external input
// such as occuserve request parameters or JSON profiles — before handing it
// to a constructor. Constructors that can fail call Validate themselves;
// clamp-style entry points (nn.Fit, rf/linmodel fits, fault.NewInjector)
// keep their behaviour and expose Validate purely as the pre-flight check.
func TestEveryConfigHasValidate(t *testing.T) {
	fset := token.NewFileSet()
	var configs []configStruct
	// validated maps "pkgDir.TypeName" → true for each Validate() error
	// method seen.
	validated := map[string]bool{}

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		pkgDir := filepath.Dir(path)
		for _, decl := range f.Decls {
			switch fd := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range fd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Config") {
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); !ok {
						continue
					}
					configs = append(configs, configStruct{
						pkg:  pkgDir,
						name: ts.Name.Name,
						pos:  fset.Position(ts.Pos()).String(),
					})
				}
			case *ast.FuncDecl:
				if fd.Name.Name != "Validate" || fd.Recv == nil || len(fd.Recv.List) != 1 {
					continue
				}
				if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
					continue
				}
				res := fd.Type.Results
				if res == nil || len(res.List) != 1 {
					continue
				}
				if id, ok := res.List[0].Type.(*ast.Ident); !ok || id.Name != "error" {
					continue
				}
				recv := fd.Recv.List[0].Type
				if star, ok := recv.(*ast.StarExpr); ok {
					recv = star.X
				}
				if id, ok := recv.(*ast.Ident); ok {
					validated[pkgDir+"."+id.Name] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) == 0 {
		t.Fatal("no exported Config structs found; the walk is broken")
	}
	for _, c := range configs {
		if !validated[c.pkg+"."+c.name] {
			t.Errorf("%s: exported %s.%s has no Validate() error method (value or pointer receiver)",
				c.pos, c.pkg, c.name)
		}
	}
	t.Logf("checked %d exported Config structs", len(configs))
}
