// Package occupancy is the public face of the reproduction: train or load a
// WiFi-sensing occupancy detector, score CSI samples with it, and serve many
// concurrent CSI feeds over HTTP.
//
// The package is a thin facade over the internal packages — every operation
// is bit-identical to the internal path it wraps. The three entry points:
//
//   - Train / TrainFromCSV / Load give you a *Detector;
//   - Detector.Score (or NewEngine for batched, multi-feed scoring) turns a
//     Sample into a Result;
//   - Serve (or NewServer) exposes the detector as the multi-tenant network
//     service implemented by internal/server.
//
// cmd/occupredict and cmd/occuserve are the reference consumers.
package occupancy

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/cpukit"
	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/obs"
)

// NumSubcarriers is the CSI width every Sample must carry: the paper's
// 64-subcarrier amplitude vector.
const NumSubcarriers = csi.NumSubcarriers

// Feature sets a detector can be trained on, matching the paper's Table IV
// column headers.
const (
	FeaturesCSI    = "CSI" // 64 subcarrier amplitudes
	FeaturesEnv    = "Env" // temperature + humidity
	FeaturesCSIEnv = "C+E" // all 66 features (the paper's best)
)

// Sample is one observation to score: a CSI amplitude vector plus, when the
// environmental sensors delivered, a temperature/humidity reading.
type Sample struct {
	Time time.Time
	// CSI holds exactly NumSubcarriers amplitudes.
	CSI []float64
	// Temp/Humidity are consumed only by Env-bearing detectors and only
	// when HasEnv is true.
	Temp     float64
	Humidity float64
	HasEnv   bool
}

// Result is one scored sample.
type Result struct {
	// P is the calibrated probability the room is occupied.
	P float64
	// Occupied is P thresholded at 0.5.
	Occupied bool
}

// record validates the sample and converts it to the internal form.
func (s *Sample) record() (dataset.Record, error) {
	var r dataset.Record
	if len(s.CSI) != NumSubcarriers {
		return r, fmt.Errorf("occupancy: sample has %d subcarriers, want %d", len(s.CSI), NumSubcarriers)
	}
	for k, v := range s.CSI {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return r, fmt.Errorf("occupancy: csi[%d] is not finite", k)
		}
		r.CSI[k] = v
	}
	r.Time = s.Time
	if s.HasEnv {
		r.Temp, r.Humidity = s.Temp, s.Humidity
	}
	return r, nil
}

// TrainConfig controls Train and TrainFromCSV. The zero value trains the
// paper's C+E detector on a synthetic paper-shaped day.
type TrainConfig struct {
	// Features selects the input subset: FeaturesCSI, FeaturesEnv or
	// FeaturesCSIEnv (default FeaturesCSIEnv).
	Features string
	// Epochs bounds training (default: the paper's 10).
	Epochs int
	// Seed makes training and, for Train, the synthetic day deterministic.
	Seed int64
	// SyntheticHours sizes the generated training window for Train
	// (default 24; ignored by TrainFromCSV).
	SyntheticHours int
	// Observer receives the train_* metrics while the detector fits. It is
	// an in-module observability hook (the obs package is internal);
	// external consumers leave it nil.
	Observer obs.Observer
}

// Validate reports whether the configuration is trainable.
func (c TrainConfig) Validate() error {
	switch c.Features {
	case "", FeaturesCSI, FeaturesEnv, FeaturesCSIEnv:
	default:
		return fmt.Errorf("occupancy: unknown feature set %q", c.Features)
	}
	if c.Epochs < 0 {
		return fmt.Errorf("occupancy: negative Epochs %d", c.Epochs)
	}
	if c.SyntheticHours < 0 {
		return fmt.Errorf("occupancy: negative SyntheticHours %d", c.SyntheticHours)
	}
	return nil
}

// detectorConfig lowers the facade config onto the internal trainer.
func (c TrainConfig) detectorConfig() (core.DetectorConfig, error) {
	if err := c.Validate(); err != nil {
		return core.DetectorConfig{}, err
	}
	cfg := core.DefaultDetectorConfig()
	if c.Features != "" {
		var fs dataset.FeatureSet
		if err := fs.UnmarshalText([]byte(c.Features)); err != nil {
			return cfg, err
		}
		cfg.Features = fs
	}
	if c.Epochs > 0 {
		cfg.Train.Epochs = c.Epochs
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	cfg.Train.Observer = c.Observer
	return cfg, nil
}

// Detector is a trained occupancy classifier.
type Detector struct {
	det *core.Detector
}

// Train fits a detector on a synthetic paper-shaped day (the same generator
// that reproduces the paper's evaluation). Use TrainFromCSV for real data.
func Train(cfg TrainConfig) (*Detector, error) {
	dcfg, err := cfg.detectorConfig()
	if err != nil {
		return nil, err
	}
	hours := cfg.SyntheticHours
	if hours == 0 {
		hours = 24
	}
	gen := dataset.DefaultGenConfig(0.5, dcfg.Seed+6)
	gen.Duration = time.Duration(hours) * time.Hour
	ds, err := dataset.Generate(gen)
	if err != nil {
		return nil, err
	}
	det, err := core.TrainDetector(ds, dcfg)
	if err != nil {
		return nil, err
	}
	return &Detector{det: det}, nil
}

// TrainFromCSV fits a detector on a dataset in the repository's CSV schema
// (see dataset.Header; `genset` emits it).
func TrainFromCSV(path string, cfg TrainConfig) (*Detector, error) {
	dcfg, err := cfg.detectorConfig()
	if err != nil {
		return nil, err
	}
	ds, err := dataset.LoadCSV(path)
	if err != nil {
		return nil, err
	}
	det, err := core.TrainDetector(ds, dcfg)
	if err != nil {
		return nil, err
	}
	return &Detector{det: det}, nil
}

// Load reads a detector bundle written by Save.
func Load(path string) (*Detector, error) {
	det, err := core.LoadDetectorFile(path)
	if err != nil {
		return nil, err
	}
	return &Detector{det: det}, nil
}

// LoadBytes reads a detector bundle from memory — e.g. one fetched from a
// serving node with Client.FetchModel, the cluster's model-distribution
// channel.
func LoadBytes(b []byte) (*Detector, error) {
	det, err := core.LoadDetector(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return &Detector{det: det}, nil
}

// Save writes the detector bundle to path.
func (d *Detector) Save(path string) error { return d.det.SaveFile(path) }

// Features returns the feature-set name the detector was trained on.
func (d *Detector) Features() string { return d.det.Features.String() }

// Score classifies one sample on the direct single-record path. For many
// concurrent callers sharing one detector, use NewEngine — it batches and is
// bit-identical to this path.
func (d *Detector) Score(s Sample) (Result, error) {
	rec, err := s.record()
	if err != nil {
		return Result{}, err
	}
	p, label := d.det.PredictRecord(&rec)
	return Result{P: p, Occupied: label == 1}, nil
}

// PredictRecord exposes the internal predictor contract so in-module code
// can hand a *Detector straight to the streaming runtime.
func (d *Detector) PredictRecord(r *dataset.Record) (float64, int) {
	return d.det.PredictRecord(r)
}

// Precision values EngineConfig and ServeConfig accept. PrecisionF64 is
// bit-identical to Detector.Score and the default; PrecisionF32 serves
// through float32 arenas (the fast path); PrecisionI8 serves int8-quantised
// weights (the small path). Reduced precisions keep scoring deterministic —
// a sample's probability never depends on batching — but diverge boundedly
// from the f64 reference (see DESIGN.md §12).
const (
	PrecisionF64 = "f64"
	PrecisionF32 = "f32"
	PrecisionI8  = "int8"
)

// Kernel returns the compute kernel every score in this process runs on:
// "avx2" when the hand-written AVX2+FMA kernels were selected at startup,
// "generic" for the portable pure-Go kernels (DESIGN.md §14). The selection
// is made once per process (hardware detection, overridable via the
// OCCU_KERNEL environment variable) and never changes.
func Kernel() string { return cpukit.Active().String() }

// KernelDescription returns the one-line selection report servers print at
// startup, e.g. "avx2 (auto-detected; cpu avx2+fma: true)".
func KernelDescription() string { return cpukit.Describe() }

// KernelError reports a failed kernel selection — OCCU_KERNEL forced a
// kernel this CPU cannot run, or named an unknown kernel. The process falls
// back to generic in that case; servers should treat a non-nil error as
// fatal at startup rather than silently serving slower than asked.
func KernelError() error { return cpukit.SelectionError() }

// EngineConfig controls NewEngine. The zero value is sensible: one worker
// per core, micro-batches of up to 256 rows, float64 scoring.
type EngineConfig struct {
	// Workers is the number of inference goroutines (0: one per core).
	Workers int
	// MaxBatch caps one micro-batch (0: 256).
	MaxBatch int
	// Precision selects the scorer arithmetic: PrecisionF64 (default),
	// PrecisionF32 or PrecisionI8.
	Precision string
	// Observer receives the infer_* metrics. In-module hook; external
	// consumers leave it nil (the engine then keeps a private registry so
	// Requests still works).
	Observer obs.Observer
}

// Validate reports whether the configuration is usable.
func (c EngineConfig) Validate() error {
	if c.Workers < 0 || c.MaxBatch < 0 {
		return fmt.Errorf("occupancy: negative engine sizes (workers %d, batch %d)", c.Workers, c.MaxBatch)
	}
	if _, err := infer.ParsePrecision(c.Precision); err != nil {
		return err
	}
	return nil
}

// Engine serves one detector to many concurrent callers through the batched
// inference engine: requests arriving together coalesce into micro-batches,
// with results bit-identical to Detector.Score.
type Engine struct {
	eng *core.DetectorEngine
	reg *obs.Registry
}

// NewEngine wraps the detector in a batched serving engine. Close it when
// done.
func NewEngine(d *Detector, cfg EngineConfig) (*Engine, error) {
	if d == nil {
		return nil, errNilDetector
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 256
	}
	observer := cfg.Observer
	if observer == nil {
		observer = obs.NewRegistry()
	}
	reg, _ := observer.(*obs.Registry)
	eng, err := core.NewDetectorEngine(d.det, core.ServeConfig{
		Workers:   cfg.Workers,
		MaxBatch:  cfg.MaxBatch,
		Precision: cfg.Precision,
		Observer:  observer,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, reg: reg}, nil
}

// Score classifies one sample through the shared batch engine.
func (e *Engine) Score(s Sample) (Result, error) {
	rec, err := s.record()
	if err != nil {
		return Result{}, err
	}
	p, label := e.eng.PredictRecord(&rec)
	return Result{P: p, Occupied: label == 1}, nil
}

// PredictRecord exposes the internal predictor contract (see
// Detector.PredictRecord).
func (e *Engine) PredictRecord(r *dataset.Record) (float64, int) {
	return e.eng.PredictRecord(r)
}

// Requests returns how many predictions the engine has served (0 when a
// custom non-registry Observer was supplied).
func (e *Engine) Requests() int64 {
	if e.reg == nil {
		return 0
	}
	return e.reg.Counter("infer_requests_total", "").Value()
}

// Close shuts the engine's workers down.
func (e *Engine) Close() { e.eng.Close() }

var errNilDetector = errors.New("occupancy: nil detector")
