package occupancy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// Wire types of the /v1 surface, re-exported so client code never imports
// internal packages. They are aliases, not copies: the client and the server
// marshal the same bytes by construction.
type (
	// Frame is one CSI frame as ingested over the wire.
	Frame = server.FrameJSON
	// FeedInfo describes a feed in registration and listing responses.
	FeedInfo = server.FeedInfo
	// Decision is one occupancy decision event (a stream line or the
	// /occupancy body).
	Decision = server.Event
	// ErrorBody is the uniform JSON error envelope of every non-2xx
	// response.
	ErrorBody = server.ErrorBody
	// ClusterInfo is the GET /v1/cluster body.
	ClusterInfo = server.ClusterInfo
	// LoggedFrame is one line of a feed's durable-log dump: the frame plus
	// its log sequence number.
	LoggedFrame = server.LogFrame
	// ModelInfo describes one installed model version.
	ModelInfo = server.ModelInfo
	// ModelsResponse is the versioned-model listing body.
	ModelsResponse = server.ModelsResponse
	// DriftStatus is a feed's drift-detector state on the listing surface.
	DriftStatus = server.DriftStatus
)

// APIError is any non-2xx answer from the service, carrying the HTTP status
// and the decoded error envelope. Callers switch on Code — the status only
// groups causes coarsely.
type APIError struct {
	Status int
	ErrorBody
}

// Error renders the failure for logs.
func (e *APIError) Error() string {
	return fmt.Sprintf("occupancy: server answered %d %s: %s", e.Status, e.Code, e.Message)
}

// IsCode reports whether err is an APIError carrying the given envelope code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// ClientConfig configures Client. Only BaseURL is required.
type ClientConfig struct {
	// BaseURL is any node of the service — a standalone server, a cluster
	// member, or a forwarding router. No trailing slash required.
	BaseURL string
	// HTTPClient, when non-nil, replaces http.DefaultClient. Streaming
	// calls need a client without an overall Timeout.
	HTTPClient *http.Client
	// MaxRetries bounds consecutive no-progress retries of a pressure
	// response (429, 500 log_error, or 503 draining / routing_conflict)
	// before Ingest gives up (default 4). Retries honor Retry-After /
	// retry_after_ms; a batch that makes partial progress resets the
	// budget.
	MaxRetries int
	// MaxRetryWait caps one Retry-After sleep (default 5s).
	MaxRetryWait time.Duration
	// DisableRouting pins every request to BaseURL: the client never
	// fetches the shard map and relies on server-side redirects or
	// forwarding. The default (false) routes per-feed requests to the
	// owning node once a shard map is available.
	DisableRouting bool
}

// Validate reports whether the client configuration is usable.
func (c ClientConfig) Validate() error {
	if c.BaseURL == "" {
		return errors.New("occupancy: ClientConfig.BaseURL is required")
	}
	u, err := url.Parse(c.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("occupancy: unusable BaseURL %q (want e.g. http://host:port)", c.BaseURL)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("occupancy: negative MaxRetries %d", c.MaxRetries)
	}
	if c.MaxRetryWait < 0 {
		return fmt.Errorf("occupancy: negative MaxRetryWait %v", c.MaxRetryWait)
	}
	return nil
}

// maxIngestBatch bounds one ingest request the client sends; larger slices
// are chunked. Well under the server's request-body cap at wire size.
const maxIngestBatch = 512

// Client is the typed interface to the /v1 surface. It is safe for
// concurrent use.
//
// Against a sharded cluster the client is shard-map aware: on first use it
// fetches the map from BaseURL and sends each feed's requests straight to
// the owning node (refresh with RefreshShardMap after a topology change). A
// standalone server, or DisableRouting, pins everything to BaseURL; requests
// that still land on a non-owner are healed by the server — the client
// follows its 307, or the router forwards.
type Client struct {
	cfg  ClientConfig
	base string
	hc   *http.Client

	mu      sync.Mutex
	probed  bool // cluster probe done (or routing disabled)
	ring    *cluster.Ring
	mapInfo ShardMap
}

// NewClient builds a Client. The configuration must Validate.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.MaxRetryWait == 0 {
		cfg.MaxRetryWait = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		cfg:    cfg,
		base:   strings.TrimSuffix(cfg.BaseURL, "/"),
		hc:     hc,
		probed: cfg.DisableRouting,
	}, nil
}

// At returns a derived client pinned to the given node address (no shard-map
// routing), sharing the HTTP client and retry policy. Use it to address one
// specific node — drain it, pull a log from it — regardless of placement.
func (c *Client) At(addr string) *Client {
	return &Client{
		cfg:    c.cfg,
		base:   strings.TrimSuffix(addr, "/"),
		hc:     c.hc,
		probed: true,
	}
}

// ShardMap returns the shard map the client currently routes by (zero Map
// when none is known).
func (c *Client) ShardMap() ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mapInfo
}

// RefreshShardMap fetches BaseURL's cluster info and routes by its map from
// now on. Against a standalone server (no_cluster) it clears routing and
// returns nil.
func (c *Client) RefreshShardMap(ctx context.Context) error {
	info, err := c.Cluster(ctx)
	if err != nil {
		if IsCode(err, server.CodeNoCluster) {
			c.mu.Lock()
			c.probed, c.ring, c.mapInfo = true, nil, ShardMap{}
			c.mu.Unlock()
			return nil
		}
		return err
	}
	return c.installMap(info.Map)
}

// installMap compiles and installs a map for routing (an empty map clears
// routing).
func (c *Client) installMap(m ShardMap) error {
	var ring *cluster.Ring
	if !m.Empty() {
		r, err := cluster.NewRing(m)
		if err != nil {
			return err
		}
		ring = r
	}
	c.mu.Lock()
	c.probed, c.ring, c.mapInfo = true, ring, m
	c.mu.Unlock()
	return nil
}

// endpointFor resolves the base URL to send a feed's request to, probing the
// cluster once if needed. Any probe failure degrades to BaseURL — the server
// side still heals misplacement.
func (c *Client) endpointFor(ctx context.Context, feed string) string {
	c.mu.Lock()
	probed, ring := c.probed, c.ring
	c.mu.Unlock()
	if !probed {
		_ = c.RefreshShardMap(ctx)
		c.mu.Lock()
		ring = c.ring
		c.mu.Unlock()
	}
	if ring != nil {
		if owner, ok := ring.Owner(feed); ok {
			return strings.TrimSuffix(owner.Addr, "/")
		}
	}
	return c.base
}

// do performs one JSON round trip: marshal in (nil: no body), decode a 2xx
// answer into out (nil or 204: discard), turn any other answer into an
// *APIError. 307s are followed transparently (the request body is replayed).
func (c *Client) do(ctx context.Context, method, base, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil || resp.StatusCode == http.StatusNoContent {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return decodeAPIError(resp)
}

// decodeAPIError turns a non-2xx response into an *APIError, tolerating
// non-envelope bodies (proxies, panics) by synthesizing one.
func decodeAPIError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &ae.ErrorBody); err != nil || ae.Code == "" {
		ae.Code = server.CodeInternal
		ae.Message = strings.TrimSpace(string(raw))
		if ae.Message == "" {
			ae.Message = resp.Status
		}
	}
	if ae.RetryAfterMS == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfterMS = int64(secs) * 1000
		}
	}
	return ae
}

// RegisterFeed registers (or finds) a feed on its owning node.
func (c *Client) RegisterFeed(ctx context.Context, id string) (FeedInfo, error) {
	var fi FeedInfo
	err := c.do(ctx, http.MethodPut, c.endpointFor(ctx, id), "/v1/feeds/"+url.PathEscape(id), nil, &fi)
	return fi, err
}

// CloseFeed closes a feed; its queued frames still get decisions.
func (c *Client) CloseFeed(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, c.endpointFor(ctx, id), "/v1/feeds/"+url.PathEscape(id), nil, nil)
}

// ListFeeds lists the feeds live on the node at BaseURL (listing is
// per-node, not cluster-wide).
func (c *Client) ListFeeds(ctx context.Context) ([]FeedInfo, error) {
	var out struct {
		Feeds []FeedInfo `json:"feeds"`
	}
	err := c.do(ctx, http.MethodGet, c.base, "/v1/feeds", nil, &out)
	return out.Feeds, err
}

// Ingest sends frames to the feed, chunking large slices and riding out
// pressure: a partially-accepted batch (429 queue_full / rate_limited, or
// 500 log_error) advances past the accepted prefix, waits the server's
// retry_after_ms, and retries the rest. It returns the number of frames
// accepted — equal to len(frames) unless the retry budget (MaxRetries
// consecutive attempts with zero progress) or ctx ran out, in which case the
// error is the last pressure answer.
func (c *Client) Ingest(ctx context.Context, id string, frames []Frame) (int, error) {
	ep := c.endpointFor(ctx, id)
	path := "/v1/feeds/" + url.PathEscape(id) + "/frames"
	accepted := 0
	stalls := 0
	for accepted < len(frames) {
		chunk := frames[accepted:]
		if len(chunk) > maxIngestBatch {
			chunk = chunk[:maxIngestBatch]
		}
		var ok server.IngestResponse
		err := c.do(ctx, http.MethodPost, ep, path, server.IngestRequest{Frames: chunk}, &ok)
		if err == nil {
			accepted += ok.Accepted
			stalls = 0
			continue
		}
		var ae *APIError
		if !errors.As(err, &ae) || !retryableCode(ae.Code) {
			return accepted, err
		}
		accepted += ae.Accepted
		if ae.Accepted > 0 {
			stalls = 0
		} else {
			stalls++
			if stalls > c.cfg.MaxRetries {
				return accepted, err
			}
		}
		if err := c.sleep(ctx, ae.RetryAfterMS); err != nil {
			return accepted, err
		}
		if ae.Code == server.CodeDraining || ae.Code == server.CodeRoutingConflict {
			// The topology is moving under us — a drain or a map the nodes
			// disagree on. Re-resolve the feed's owner before the retry so
			// the remainder lands where the feed now lives.
			_ = c.RefreshShardMap(ctx)
			ep = c.endpointFor(ctx, id)
		}
	}
	return accepted, nil
}

// retryableCode reports whether an envelope code means "back off and retry
// the rest of the batch". Pressure codes (429, log_error) mean the same
// node will accept soon; the transitional 503s (draining, routing_conflict)
// mean another node will — Ingest refreshes the shard map before those
// retries.
func retryableCode(code string) bool {
	switch code {
	case server.CodeQueueFull, server.CodeRateLimited, server.CodeLogError,
		server.CodeDraining, server.CodeRoutingConflict:
		return true
	}
	return false
}

// sleep waits the server-suggested backoff (capped at MaxRetryWait), or
// until ctx is done.
func (c *Client) sleep(ctx context.Context, ms int64) error {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	if d > c.cfg.MaxRetryWait {
		d = c.cfg.MaxRetryWait
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Occupancy returns the feed's latest decision; ok is false when the feed
// has not decided yet (204).
func (c *Client) Occupancy(ctx context.Context, id string) (Decision, bool, error) {
	ep := c.endpointFor(ctx, id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/v1/feeds/"+url.PathEscape(id)+"/occupancy", nil)
	if err != nil {
		return Decision{}, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Decision{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return Decision{}, false, nil
	case http.StatusOK:
		var d Decision
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			return Decision{}, false, err
		}
		return d, true, nil
	}
	return Decision{}, false, decodeAPIError(resp)
}

// DecisionStream is a live NDJSON decision subscription. Next blocks for the
// next decision; it returns io.EOF when the feed ends and the stream closes
// cleanly. Close releases the connection.
type DecisionStream struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// Next returns the next decision on the stream.
func (s *DecisionStream) Next() (Decision, error) {
	var d Decision
	if err := s.dec.Decode(&d); err != nil {
		return Decision{}, err
	}
	return d, nil
}

// Close tears the subscription down.
func (s *DecisionStream) Close() error { return s.body.Close() }

// StreamDecisions subscribes to the feed's decision stream — state
// transitions by default, every decision with all=true. Cancel ctx or Close
// the stream to unsubscribe. The configured HTTP client must not enforce an
// overall Timeout, or the stream dies with it.
func (c *Client) StreamDecisions(ctx context.Context, id string, all bool) (*DecisionStream, error) {
	ep := c.endpointFor(ctx, id)
	u := ep + "/v1/feeds/" + url.PathEscape(id) + "/stream"
	if all {
		u += "?all=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return &DecisionStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Cluster returns the node's cluster info (identity, shard map, model hash).
func (c *Client) Cluster(ctx context.Context) (ClusterInfo, error) {
	var info ClusterInfo
	err := c.do(ctx, http.MethodGet, c.base, "/v1/cluster", nil, &info)
	return info, err
}

// UpdateShardMap installs a strictly-newer shard map on the node at BaseURL
// and routes by it from now on. Installing a topology change on a whole
// cluster means calling this At() every member.
func (c *Client) UpdateShardMap(ctx context.Context, m ShardMap) error {
	if err := c.do(ctx, http.MethodPut, c.base, "/v1/cluster", m, nil); err != nil {
		return err
	}
	return c.installMap(m)
}

// DrainNode drains the node at BaseURL: new work is rejected immediately and
// the call blocks until every accepted frame has its decision. After a clean
// return the node's feed logs are complete and quiescent — safe handoff
// sources.
func (c *Client) DrainNode(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, c.base, "/v1/cluster/drain", nil, nil)
}

// FeedLog pulls the feed's complete durable frame log from the node at
// BaseURL. It fails if the dump is truncated (no terminating eof line) or
// the count disagrees — a partial log must never seed a handoff.
func (c *Client) FeedLog(ctx context.Context, id string) ([]LoggedFrame, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/feeds/"+url.PathEscape(id)+"/log", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var frames []LoggedFrame
	for {
		var line struct {
			LoggedFrame
			EOF    bool `json:"eof"`
			Frames int  `json:"frames"`
		}
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, errors.New("occupancy: log dump truncated (no eof line)")
			}
			return nil, err
		}
		if line.EOF {
			if line.Frames != len(frames) {
				return nil, fmt.Errorf("occupancy: log dump eof count %d != %d frames received", line.Frames, len(frames))
			}
			return frames, nil
		}
		frames = append(frames, line.LoggedFrame)
	}
}

// HandoffFeed moves a feed's history onto its current owner: it pulls the
// complete log from fromAddr (a drained node), registers the feed — routed
// to the new owner — and re-ingests the history in order through the normal
// ingest path. Decisions are a pure function of the accepted frame sequence,
// so the new owner recomputes the feed's decision sequence bit-identically;
// live ingest then continues where the old node stopped. It returns the
// number of frames handed off.
func (c *Client) HandoffFeed(ctx context.Context, id, fromAddr string) (int, error) {
	logged, err := c.At(fromAddr).FeedLog(ctx, id)
	if err != nil {
		return 0, err
	}
	if _, err := c.RegisterFeed(ctx, id); err != nil {
		return 0, err
	}
	frames := make([]Frame, len(logged))
	for i, lf := range logged {
		frames[i] = lf.FrameJSON
	}
	n, err := c.Ingest(ctx, id, frames)
	if err != nil {
		return n, fmt.Errorf("occupancy: handoff re-ingest of %q accepted %d of %d: %w", id, n, len(frames), err)
	}
	return n, nil
}

// FetchModel downloads the node's detector bundle, verifying the reported
// SHA-256 via /v1/cluster when the node is cluster-configured.
func (c *Client) FetchModel(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/model", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Models lists the node's installed model versions and which one is
// active.
func (c *Client) Models(ctx context.Context) (ModelsResponse, error) {
	var out ModelsResponse
	err := c.do(ctx, http.MethodGet, c.base, "/v1/models", nil, &out)
	return out, err
}

// InstallModel uploads a candidate detector bundle to the node at BaseURL.
// The server gates the bundle (parse, feature-set match, divergence at the
// serving precision) before it becomes an installed version; a rejected
// candidate answers 422 model_rejected and is never installed. Identical
// bytes are deduplicated onto the existing version. Installing does not
// activate — follow with ActivateModel.
func (c *Client) InstallModel(ctx context.Context, bundle []byte) (ModelInfo, error) {
	var info ModelInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/models", bytes.NewReader(bundle))
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return info, decodeAPIError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// ActivateModel atomically swaps the node's active model version. The swap
// is zero-downtime: no in-flight frame is lost, and every decision carries
// the version (Decision.ModelVersion) that actually scored it.
func (c *Client) ActivateModel(ctx context.Context, version string) error {
	return c.do(ctx, http.MethodPost, c.base, "/v1/models/activate",
		server.ModelActivateRequest{ID: version}, nil)
}

// PinFeedModel pins a feed to an installed model version: the feed keeps
// serving that version through activations until UnpinFeedModel — A/B
// serving on the versioned-model plumbing. Routed to the feed's owner.
func (c *Client) PinFeedModel(ctx context.Context, feed, version string) error {
	return c.do(ctx, http.MethodPut, c.endpointFor(ctx, feed),
		"/v1/feeds/"+url.PathEscape(feed)+"/model", server.ModelPinRequest{ID: version}, nil)
}

// UnpinFeedModel removes a feed's version pin (idempotent); the feed
// returns to the active version.
func (c *Client) UnpinFeedModel(ctx context.Context, feed string) error {
	return c.do(ctx, http.MethodDelete, c.endpointFor(ctx, feed),
		"/v1/feeds/"+url.PathEscape(feed)+"/model", nil, nil)
}

// FetchModelVersion downloads one installed version's bundle by id.
// FetchModel remains the active version's bundle via the legacy alias.
func (c *Client) FetchModelVersion(ctx context.Context, version string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/models/"+url.PathEscape(version), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthy reports process liveness of the node at BaseURL.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, c.base, "/healthz", nil, nil)
}

// Ready reports whether the node at BaseURL accepts new work (draining
// answers an error).
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, c.base, "/readyz", nil, nil)
}
