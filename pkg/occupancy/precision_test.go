package occupancy

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestConfigPrecisionValidation: every public config that grew a Precision
// field pre-flights it, upholding the repository's config contract
// (config_test.go) for external input such as flag values.
func TestConfigPrecisionValidation(t *testing.T) {
	for _, p := range []string{"", PrecisionF64, PrecisionF32, PrecisionI8} {
		if err := (EngineConfig{Precision: p}).Validate(); err != nil {
			t.Fatalf("EngineConfig rejected precision %q: %v", p, err)
		}
		if err := (ServeConfig{Addr: ":0", Precision: p}).Validate(); err != nil {
			t.Fatalf("ServeConfig rejected precision %q: %v", p, err)
		}
	}
	for _, p := range []string{"f16", "F32", "quantized"} {
		if err := (EngineConfig{Precision: p}).Validate(); err == nil {
			t.Fatalf("EngineConfig accepted precision %q", p)
		}
		if err := (ServeConfig{Addr: ":0", Precision: p}).Validate(); err == nil {
			t.Fatalf("ServeConfig accepted precision %q", p)
		}
	}
	if _, err := NewEngine(&Detector{}, EngineConfig{Precision: "f16"}); err == nil {
		t.Fatal("NewEngine accepted precision f16")
	}
}

// TestEnginePrecision drives the public facade end to end at each precision:
// a reduced-precision engine must score deterministically (same sample, same
// probability, regardless of batching) and stay within the documented bounds
// of the f64 Detector.Score reference.
func TestEnginePrecision(t *testing.T) {
	det, err := Train(TrainConfig{Epochs: 1, Seed: 7, SyntheticHours: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	samples := make([]Sample, 32)
	for i := range samples {
		csi := make([]float64, NumSubcarriers)
		for k := range csi {
			csi[k] = 20 + 3*rng.NormFloat64()
		}
		samples[i] = Sample{
			Time: time.Date(2022, 1, 5, i%24, 7, 0, 0, time.UTC),
			CSI:  csi, Temp: 21 + rng.Float64(), Humidity: 40 + 5*rng.Float64(), HasEnv: true,
		}
	}
	want := make([]float64, len(samples))
	for i, s := range samples {
		r, err := det.Score(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.P
	}
	for _, tc := range []struct {
		precision string
		bound     float64
	}{
		{PrecisionF64, 0}, // engine must stay bit-identical to Score
		{PrecisionF32, 1e-3},
		{PrecisionI8, 0.15},
	} {
		eng, err := NewEngine(det, EngineConfig{Workers: 2, Precision: tc.precision})
		if err != nil {
			t.Fatal(err)
		}
		first := make([]float64, len(samples))
		for i, s := range samples {
			r, err := eng.Score(s)
			if err != nil {
				t.Fatal(err)
			}
			first[i] = r.P
			if d := math.Abs(r.P - want[i]); d > tc.bound {
				t.Fatalf("%s: sample %d drifted %g from the f64 reference (bound %g)",
					tc.precision, i, d, tc.bound)
			}
			if r.Occupied != (want[i] >= 0.5) {
				t.Fatalf("%s: sample %d decision flipped", tc.precision, i)
			}
		}
		// Determinism: a second pass reproduces every probability exactly.
		for i, s := range samples {
			r, err := eng.Score(s)
			if err != nil {
				t.Fatal(err)
			}
			if r.P != first[i] {
				t.Fatalf("%s: sample %d not deterministic: %v then %v", tc.precision, i, first[i], r.P)
			}
		}
		eng.Close()
	}
}
