package occupancy

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/framelog"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stream"
)

// ServeConfig controls Serve / NewServer. Only Addr is required; every zero
// field takes the internal/server default.
type ServeConfig struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// Fallback, when non-nil, serves feeds whose environmental sensor feed
	// has died; train it with FeaturesCSI.
	Fallback *Detector

	// Workers / MaxBatch size the shared inference engine (see EngineConfig).
	Workers  int
	MaxBatch int
	// Precision selects the scorer arithmetic for both the primary and the
	// fallback engine: PrecisionF64 (default), PrecisionF32 or PrecisionI8
	// (see EngineConfig.Precision).
	Precision string

	// QueueDepth bounds each feed's ingest queue; a full queue answers 429.
	QueueDepth int
	// MaxFeeds caps concurrently registered feeds.
	MaxFeeds int
	// RatePerSec/Burst configure the per-feed token bucket (0: unlimited).
	RatePerSec float64
	Burst      int
	// IdleTimeout evicts silent feeds (negative disables).
	IdleTimeout time.Duration
	// RequestTimeout bounds every non-streaming request.
	RequestTimeout time.Duration
	// StreamBuffer is the per-subscriber NDJSON event buffer.
	StreamBuffer int
	// DrainTimeout bounds graceful shutdown once the context is cancelled
	// (default 30 s).
	DrainTimeout time.Duration
	// Seed drives per-feed backoff jitter.
	Seed int64

	// Durability, when its Dir is set, gives every feed a crash-safe frame
	// log: accepted frames are appended before they are acknowledged, and a
	// restarted server replays each feed's log to the exact pre-crash
	// decision state. The zero value disables durability.
	Durability DurabilityConfig

	// Cluster, when non-nil, makes this node one member of a sharded
	// serving cluster: it serves and accepts the versioned shard map on
	// /v1/cluster and answers requests for feeds another node owns with a
	// 307 to the owner (or proxies them when Forward is set). Nil keeps
	// the node standalone.
	Cluster *ClusterConfig

	// Drift, when enabled, attaches a per-feed drift detector to the
	// primary decision-score stream (PSI + KS over tumbling windows,
	// exported on /metrics and the feed listing). The zero value disables
	// drift detection.
	Drift DriftConfig
}

// DriftConfig is the public face of the per-feed drift detector (see
// internal/drift). The zero value disables detection; setting any field
// enables it, with the remaining fields defaulted.
type DriftConfig struct {
	// Baseline is how many primary decision scores establish the
	// reference distribution (default 512).
	Baseline int
	// Window is the tumbling evaluation window size (default 256).
	Window int
	// Bins is the histogram resolution for PSI (default 16).
	Bins int
	// PSI and KS are the per-window trigger thresholds (defaults 0.25 and
	// 0.2; negative disables that statistic).
	PSI float64
	KS  float64
	// Consecutive is how many successive over-threshold windows latch a
	// drift trigger (default 2).
	Consecutive int
}

// Validate reports whether the drift configuration is usable; the zero
// value is valid (drift detection off).
func (c DriftConfig) Validate() error { return c.lower().Validate() }

// Enabled reports whether any field is set, i.e. whether the server will
// attach a drift detector to each feed.
func (c DriftConfig) Enabled() bool { return c.lower().Enabled() }

// lower converts to the internal/drift form.
func (c DriftConfig) lower() drift.Config {
	return drift.Config{
		Baseline:    c.Baseline,
		Window:      c.Window,
		Bins:        c.Bins,
		PSI:         c.PSI,
		KS:          c.KS,
		Consecutive: c.Consecutive,
	}
}

// ShardMap is the versioned cluster membership every node and client
// routes by; see internal/cluster for the placement contract.
type ShardMap = cluster.Map

// ClusterNode is one serving node in a ShardMap.
type ClusterNode = cluster.Node

// ClusterConfig places a node in (or in front of) a sharded cluster.
type ClusterConfig struct {
	// Self is this node's ID in the shard map. An ID the map omits makes
	// the node a thin router: it owns no feeds and redirects (or, with
	// Forward, proxies) every feed request to the owner.
	Self string
	// Map is the initial shard map. The zero value means "no membership
	// yet": feeds are served locally until a populated map is installed
	// via PUT /v1/cluster (Client.UpdateShardMap).
	Map ShardMap
	// Forward proxies misplaced feed requests to their owner instead of
	// answering 307 — the router configuration.
	Forward bool
}

// Validate reports whether the cluster configuration is usable.
func (c ClusterConfig) Validate() error { return c.lower().Validate() }

// lower converts to the internal/server form.
func (c ClusterConfig) lower() server.ClusterConfig {
	return server.ClusterConfig{Self: c.Self, Map: c.Map, Forward: c.Forward}
}

// DurabilityConfig is the public face of the per-feed frame log (see
// internal/framelog). The zero value means "no durability".
type DurabilityConfig struct {
	// Dir is the log root; each feed logs to Dir/<feedID>/. Empty disables
	// durability.
	Dir string
	// Fsync is the sync policy: "always" (survive power loss per frame),
	// "interval" (default; bound the power-loss window at FsyncInterval) or
	// "off". A SIGKILL'd process loses nothing under any policy — appends
	// bypass user-space buffering — the policy only matters for power loss.
	Fsync string
	// FsyncInterval is the maximum time between syncs under "interval"
	// (default 100ms).
	FsyncInterval time.Duration
	// SegmentMaxBytes rotates log segments at this size (default 64 MiB).
	SegmentMaxBytes int64
	// MaxSegments, when > 0, caps retained segments per feed; recovery then
	// replays only the retained suffix. 0 retains everything.
	MaxSegments int
}

// Validate reports whether the durability configuration is usable; the zero
// value is valid (durability off).
func (c DurabilityConfig) Validate() error {
	return c.framelog(nil).Validate()
}

// framelog lowers the public config to the internal one.
func (c DurabilityConfig) framelog(o obs.Observer) framelog.Config {
	return framelog.Config{
		Dir:             c.Dir,
		Fsync:           c.Fsync,
		Interval:        c.FsyncInterval,
		SegmentMaxBytes: c.SegmentMaxBytes,
		MaxSegments:     c.MaxSegments,
		Observer:        o,
	}
}

// Validate reports whether the configuration is serveable.
func (c ServeConfig) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("occupancy: ServeConfig.Addr is required")
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("occupancy: negative DrainTimeout %v", c.DrainTimeout)
	}
	if _, err := infer.ParsePrecision(c.Precision); err != nil {
		return err
	}
	if c.Cluster != nil {
		if err := c.Cluster.Validate(); err != nil {
			return err
		}
	}
	if err := c.Drift.Validate(); err != nil {
		return err
	}
	return c.Durability.Validate()
}

// Server is a bound, ready-to-run occupancy service: the multi-tenant
// internal/server behind one HTTP listener, with /metrics and /debug/pprof
// mounted alongside the feed API.
type Server struct {
	cfg      ServeConfig
	inner    *server.Server
	reg      *obs.Registry
	models   *infer.Registry
	lis      net.Listener
	httpSrv  *http.Server
	engines  []*core.DetectorEngine
	shutdown chan struct{}
}

// NewServer builds the serving stack and binds the listener (so Addr is
// known before Run), but serves nothing until Run.
func NewServer(d *Detector, cfg ServeConfig) (*Server, error) {
	if d == nil {
		return nil, errNilDetector
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 256
	}

	// Every node serves its detector bundle on /v1/model (and the version
	// registry) so a cluster can verify (by SHA-256 on /v1/cluster) that
	// all members hold identical weights — the precondition for
	// placement-independent decisions.
	var blob bytes.Buffer
	if err := d.det.Save(&blob); err != nil {
		return nil, err
	}
	// Serve the *distributed* weights, not the in-memory ones: the bundle
	// stores weights as float32, so a freshly-trained f64 detector is not
	// bit-identical to its own saved form. Normalizing to the bundle makes
	// the boot model indistinguishable from one installed over the wire —
	// the same frames score identically whether the bundle arrived via
	// NewServer, -model-from distribution, or POST /v1/models — which is
	// what lets offline replays of served traffic match bit for bit.
	d, err := LoadBytes(blob.Bytes())
	if err != nil {
		return nil, err
	}
	var clusterCfg *server.ClusterConfig
	if cfg.Cluster != nil {
		cc := cfg.Cluster.lower()
		clusterCfg = &cc
	}

	reg := obs.NewRegistry()
	ecfg := core.ServeConfig{Workers: cfg.Workers, MaxBatch: cfg.MaxBatch, Precision: cfg.Precision, Observer: reg}
	primary, err := core.NewDetectorEngine(d.det, ecfg)
	if err != nil {
		return nil, err
	}
	engines := []*core.DetectorEngine{primary}
	closeAll := func() {
		for _, e := range engines {
			e.Close()
		}
	}
	var fallback stream.Predictor
	if cfg.Fallback != nil {
		fe, err := core.NewDetectorEngine(cfg.Fallback.det, ecfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		engines = append(engines, fe)
		fallback = fe
	}

	// The model registry: the boot detector is version 1 and active, so
	// /v1/models, /v1/model and the cluster SHA agree from the first
	// request. Candidates installed later pass buildModel — the install
	// gate — before they become visible.
	models := infer.NewRegistry(reg)
	buildModel := newInstallGate(d, ecfg)
	v0, _, err := models.Install(blob.Bytes(), func(b []byte) (any, error) {
		// The boot bundle's engine already exists; reuse it rather than
		// re-gating weights the operator handed us directly.
		return primary, nil
	})
	if err == nil {
		_, err = models.Activate(v0.ID())
	}
	if err != nil {
		closeAll()
		return nil, err
	}

	inner, err := server.New(server.Config{
		Primary:        primary,
		Fallback:       fallback,
		PrimaryUsesEnv: d.Features() != FeaturesCSI,
		QueueDepth:     cfg.QueueDepth,
		MaxFeeds:       cfg.MaxFeeds,
		RatePerSec:     cfg.RatePerSec,
		Burst:          cfg.Burst,
		IdleTimeout:    cfg.IdleTimeout,
		RequestTimeout: cfg.RequestTimeout,
		StreamBuffer:   cfg.StreamBuffer,
		Seed:           cfg.Seed,
		Observer:       reg,
		Durability:     cfg.Durability.framelog(reg),
		Cluster:        clusterCfg,
		Models:         models,
		BuildModel:     buildModel,
		Drift:          cfg.Drift.lower(),
	})
	if err != nil {
		closeAll()
		return nil, err
	}

	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		inner.Close()
		closeAll()
		return nil, err
	}

	mux := http.NewServeMux()
	mux.Handle("/", inner.Handler())
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/pprof/", obs.Handler(reg))
	return &Server{
		cfg:      cfg,
		inner:    inner,
		reg:      reg,
		models:   models,
		lis:      lis,
		httpSrv:  &http.Server{Handler: mux},
		engines:  engines,
		shutdown: make(chan struct{}),
	}, nil
}

// newInstallGate builds the BuildModel hook for candidate bundles: parse,
// feature-set match against the boot detector, a divergence sweep at the
// serving precision (skipped at f64, where serving is the bit-exact
// reference), and only then an engine. Any failure rejects the install —
// the registry never holds a version that cannot serve.
func newInstallGate(boot *Detector, ecfg core.ServeConfig) func([]byte) (stream.Predictor, error) {
	// The divergence sweep needs representative frames; generate a short
	// synthetic trace lazily (and once), since f64 servers never need it.
	var (
		once    sync.Once
		sweep   []dataset.Record
		sweepOK error
	)
	sweepRecs := func() ([]dataset.Record, error) {
		once.Do(func() {
			gcfg := dataset.DefaultGenConfig(2, 11)
			gcfg.Duration = time.Hour
			ds, err := dataset.Generate(gcfg)
			if err != nil {
				sweepOK = err
				return
			}
			sweep = ds.Records
		})
		return sweep, sweepOK
	}
	return func(b []byte) (stream.Predictor, error) {
		nd, err := LoadBytes(b)
		if err != nil {
			return nil, fmt.Errorf("parsing candidate bundle: %w", err)
		}
		if nd.det.Features != boot.det.Features {
			return nil, fmt.Errorf("candidate feature set %s does not match the serving set %s",
				nd.det.Features, boot.det.Features)
		}
		if p, _ := infer.ParsePrecision(ecfg.Precision); p != infer.PrecisionF64 {
			recs, err := sweepRecs()
			if err != nil {
				return nil, fmt.Errorf("building divergence sweep: %w", err)
			}
			res, err := core.RunDivergence(nd.det, recs, core.DivergenceConfig{Precision: string(p)})
			if err != nil {
				return nil, fmt.Errorf("divergence sweep: %w", err)
			}
			if !res.Pass {
				return nil, fmt.Errorf("candidate diverges beyond the serving bounds: %s", res)
			}
		}
		return core.NewDetectorEngine(nd.det, ecfg)
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the base URL of the bound listener.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Run serves until ctx is cancelled, then drains gracefully: /readyz flips
// to 503 and new work is rejected first, in-flight frames finish their
// decisions (bounded by DrainTimeout), and only then does the listener
// close. Run returns nil after a clean drain.
func (s *Server) Run(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() { errc <- s.httpSrv.Serve(s.lis) }()

	select {
	case err := <-errc:
		s.closeEngines()
		return err
	case <-ctx.Done():
	}

	// Stop routing before stopping listening: readiness flips and new
	// registrations/ingest reject while the listener still answers, then
	// accepted frames drain, then connections close.
	s.inner.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.inner.Drain(drainCtx)
	shutErr := s.httpSrv.Shutdown(drainCtx)
	s.closeEngines()
	close(s.shutdown)
	if drainErr != nil {
		return drainErr
	}
	if shutErr != nil {
		return shutErr
	}
	return nil
}

// Metrics renders the Prometheus exposition of every server and engine
// series.
func (s *Server) Metrics() string {
	var b strings.Builder
	_ = s.reg.WriteProm(&b)
	return b.String()
}

func (s *Server) closeEngines() {
	closed := make(map[*core.DetectorEngine]bool, len(s.engines))
	for _, e := range s.engines {
		e.Close()
		closed[e] = true
	}
	// Engines behind versions installed over the wire live in the model
	// registry, not s.engines; the boot version's payload is the primary
	// engine already closed above.
	for _, v := range s.models.All() {
		if e, ok := v.Payload().(*core.DetectorEngine); ok && !closed[e] {
			e.Close()
			closed[e] = true
		}
	}
}

// Serve runs the occupancy service until ctx is cancelled: NewServer + Run.
func Serve(ctx context.Context, d *Detector, cfg ServeConfig) error {
	srv, err := NewServer(d, cfg)
	if err != nil {
		return err
	}
	return srv.Run(ctx)
}
